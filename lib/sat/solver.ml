(* CDCL solver, MiniSat lineage.

   Watching convention: a clause watches its first two literals
   [lits.(0)] and [lits.(1)]; the clause is registered in the watcher
   list of the *negation* of each watched literal, so when a literal [p]
   is enqueued (made true) we visit [watches.(p)] — exactly the clauses
   in which a watched literal just became false. *)

type clause = {
  mutable lits : Cnf.lit array;
  mutable activity : float;
  learnt : bool;
  mutable deleted : bool;
}

type result = Sat of Cnf.model | Unsat

type bounded_result =
  | Decided of result
  | Unknown of { reason : string; conflicts : int; propagations : int }

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learnt_literals : int;
  max_vars : int;
  clauses_added : int;
}

type config = {
  restart_base : float;
  invert_polarity : bool;
  seed : int;
}

let default_config = { restart_base = 100.0; invert_polarity = false; seed = 0 }

let diversified k =
  if k <= 0 then default_config
  else
    {
      restart_base = [| 100.0; 50.0; 200.0; 70.0; 150.0 |].(k mod 5);
      invert_polarity = k land 1 = 1;
      seed = k;
    }

let dummy_clause = { lits = [||]; activity = 0.0; learnt = false; deleted = false }

type t = {
  mutable nvars : int;
  mutable clauses : clause Vec.t; (* problem clauses *)
  mutable learnts : clause Vec.t; (* learnt clauses *)
  mutable watches : clause Vec.t array; (* lit-indexed *)
  mutable assigns : Cnf.value array; (* var-indexed *)
  mutable level : int array; (* var-indexed *)
  mutable reason : clause option array; (* var-indexed *)
  mutable polarity : bool array; (* var-indexed saved phase *)
  mutable seen : bool array; (* var-indexed scratch *)
  trail : Cnf.lit Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  order : Heap.t;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool; (* false once root-level unsat *)
  (* certification *)
  mutable proof : Proof.trail option; (* DRUP trail, when logging is on *)
  mutable originals : Cnf.clause list; (* pre-simplification clauses, reversed *)
  mutable last_certification : Proof.report option;
  (* failed-assumption core of the most recent Unsat-under-assumptions *)
  mutable conflict_core : Cnf.lit list;
  (* statistics *)
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_conflicts : int;
  mutable n_restarts : int;
  mutable n_learnt_lits : int;
  mutable n_clauses_added : int;
}

let var_decay = 1.0 /. 0.95
let clause_decay = 1.0 /. 0.999

let create () =
  {
    nvars = 0;
    clauses = Vec.create ~dummy:dummy_clause ();
    learnts = Vec.create ~dummy:dummy_clause ();
    watches = Array.make 2 (Vec.create ~dummy:dummy_clause ());
    assigns = Array.make 1 Cnf.Unknown;
    level = Array.make 1 (-1);
    reason = Array.make 1 None;
    polarity = Array.make 1 false;
    seen = Array.make 1 false;
    trail = Vec.create ~dummy:0 ();
    trail_lim = Vec.create ~dummy:0 ();
    qhead = 0;
    order = Heap.create 16;
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    proof = None;
    originals = [];
    last_certification = None;
    conflict_core = [];
    n_decisions = 0;
    n_propagations = 0;
    n_conflicts = 0;
    n_restarts = 0;
    n_learnt_lits = 0;
    n_clauses_added = 0;
  }

let num_vars s = s.nvars

let enable_proof s =
  if s.proof = None then begin
    if s.n_clauses_added > 0 then
      invalid_arg "Solver.enable_proof: clauses were already added";
    s.proof <- Some (Proof.create ())
  end

let proof_enabled s = s.proof <> None
let proof_steps s = match s.proof with Some t -> Proof.steps t | None -> []
let last_certification s = s.last_certification

let original_problem s =
  if s.proof = None then
    invalid_arg "Solver.original_problem: proof logging is not enabled";
  { Cnf.num_vars = s.nvars; clauses = s.originals }

(* Record the derivation of the empty clause (root-level unsat). Only
   meaningful for assumption-free refutations; callers guard. *)
let log_empty s =
  match s.proof with Some t -> Proof.log_add t [||] | None -> ()

let resize_arrays s n =
  let grow a fill =
    let old = Array.length a in
    if n + 1 > old then begin
      let b = Array.make (max (n + 1) (2 * old)) fill in
      Array.blit a 0 b 0 old;
      b
    end
    else a
  in
  s.assigns <- grow s.assigns Cnf.Unknown;
  s.level <- grow s.level (-1);
  s.reason <- grow s.reason None;
  s.polarity <- grow s.polarity false;
  s.seen <- grow s.seen false;
  let oldw = Array.length s.watches in
  if (2 * n) + 2 > oldw then begin
    let w = Array.make (max ((2 * n) + 2) (2 * oldw)) (Vec.create ~dummy:dummy_clause ()) in
    Array.blit s.watches 0 w 0 oldw;
    for i = oldw to Array.length w - 1 do
      w.(i) <- Vec.create ~dummy:dummy_clause ()
    done;
    s.watches <- w
  end;
  Heap.grow_to s.order n

let ensure_vars s n =
  if n > s.nvars then begin
    resize_arrays s n;
    for v = s.nvars + 1 to n do
      Heap.insert s.order v
    done;
    s.nvars <- n
  end

let new_var s =
  ensure_vars s (s.nvars + 1);
  s.nvars

let value_lit s l =
  let v = s.assigns.(Cnf.var_of l) in
  if Cnf.is_pos l then v else Cnf.value_negate v

let decision_level s = Vec.size s.trail_lim

(* Enqueue a literal as true, recording its reason. *)
let enqueue s l reason =
  let v = Cnf.var_of l in
  s.assigns.(v) <- (if Cnf.is_pos l then Cnf.True else Cnf.False);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

let watch s l c = Vec.push s.watches.(l) c

(* Boolean constraint propagation. Returns the conflicting clause, if any. *)
let propagate s =
  let conflict = ref None in
  while !conflict = None && s.qhead < Vec.size s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.n_propagations <- s.n_propagations + 1;
    let ws = s.watches.(p) in
    let i = ref 0 in
    while !i < Vec.size ws do
      let c = Vec.get ws !i in
      if c.deleted then Vec.swap_remove ws !i
      else begin
        let lits = c.lits in
        let false_lit = Cnf.negate p in
        (* normalize: put the falsified watcher at position 1 *)
        if lits.(0) = false_lit then begin
          lits.(0) <- lits.(1);
          lits.(1) <- false_lit
        end;
        if value_lit s lits.(0) = Cnf.True then incr i
        else begin
          (* look for a replacement watch *)
          let n = Array.length lits in
          let found = ref (-1) in
          let k = ref 2 in
          while !found < 0 && !k < n do
            if value_lit s lits.(!k) <> Cnf.False then found := !k;
            incr k
          done;
          if !found >= 0 then begin
            let k = !found in
            lits.(1) <- lits.(k);
            lits.(k) <- false_lit;
            watch s (Cnf.negate lits.(1)) c;
            Vec.swap_remove ws !i
          end
          else if value_lit s lits.(0) = Cnf.False then begin
            (* conflict: drain queue *)
            conflict := Some c;
            s.qhead <- Vec.size s.trail;
            i := Vec.size ws
          end
          else begin
            enqueue s lits.(0) (Some c);
            incr i
          end
        end
      end
    done
  done;
  !conflict

let var_bump s v =
  Heap.bump s.order v s.var_inc;
  if Heap.activity s.order v > 1e100 then begin
    Heap.rescale s.order 1e-100;
    s.var_inc <- s.var_inc *. 1e-100
  end

let clause_bump s c =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun c -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

(* First-UIP conflict analysis. Returns (learnt clause lits with the
   asserting literal first, backjump level). *)
let analyze s confl =
  let learnt = ref [] in
  let seen = s.seen in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref (Some confl) in
  let btlevel = ref 0 in
  let trail_idx = ref (Vec.size s.trail - 1) in
  let continue = ref true in
  while !continue do
    (match !confl with
    | None -> ()
    | Some c ->
        if c.learnt then clause_bump s c;
        let start = if !p = -1 then 0 else 1 in
        for j = start to Array.length c.lits - 1 do
          let q = c.lits.(j) in
          let v = Cnf.var_of q in
          if (not seen.(v)) && s.level.(v) > 0 then begin
            seen.(v) <- true;
            var_bump s v;
            if s.level.(v) >= decision_level s then incr counter
            else begin
              learnt := q :: !learnt;
              btlevel := max !btlevel s.level.(v)
            end
          end
        done);
    (* walk the trail back to the next marked literal *)
    let v = ref (Cnf.var_of (Vec.get s.trail !trail_idx)) in
    while not seen.(!v) do
      decr trail_idx;
      v := Cnf.var_of (Vec.get s.trail !trail_idx)
    done;
    p := Vec.get s.trail !trail_idx;
    decr trail_idx;
    seen.(!v) <- false;
    confl := s.reason.(!v);
    decr counter;
    if !counter <= 0 then continue := false
  done;
  let asserting = Cnf.negate !p in
  (* local clause minimization: drop literals implied by others *)
  let is_redundant q =
    match s.reason.(Cnf.var_of q) with
    | None -> false
    | Some c ->
        Array.for_all
          (fun l ->
            l = Cnf.negate q
            || seen.(Cnf.var_of l)
            || s.level.(Cnf.var_of l) = 0)
          c.lits
  in
  List.iter (fun q -> seen.(Cnf.var_of q) <- true) !learnt;
  let kept = List.filter (fun q -> not (is_redundant q)) !learnt in
  List.iter (fun q -> seen.(Cnf.var_of q) <- false) !learnt;
  let btlevel =
    List.fold_left (fun acc q -> max acc (s.level.(Cnf.var_of q))) 0 kept
  in
  (asserting :: kept, btlevel)

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = Cnf.var_of l in
      s.assigns.(v) <- Cnf.Unknown;
      s.polarity.(v) <- Cnf.is_pos l;
      s.reason.(v) <- None;
      s.level.(v) <- -1;
      if not (Heap.in_heap s.order v) then Heap.insert s.order v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.size s.trail
  end

(* Assumption-aware final conflict analysis (MiniSat's [analyzeFinal]):
   starting from the literals of a conflicting clause, resolve back
   through the implication graph until only assumption pseudo-decisions
   remain. The result is the subset of the assumptions that actually
   drove the conflict — a core: the formula is already unsatisfiable
   under just these literals. Must run before the trail is cancelled. *)
let analyze_final s confl_lits =
  if decision_level s = 0 then []
  else begin
    let seen = s.seen in
    let marked = ref [] in
    let mark q =
      let v = Cnf.var_of q in
      if (not seen.(v)) && s.level.(v) > 0 then begin
        seen.(v) <- true;
        marked := v :: !marked
      end
    in
    Array.iter mark confl_lits;
    let core = ref [] in
    let bound = Vec.get s.trail_lim 0 in
    (* Only literals sitting at a level boundary are pseudo-decisions
       (here: assumptions — every remaining level is an assumption
       level when this runs). A reason-less literal in mid-level is a
       learnt UNIT parked at the assumption level by [record_learnt]:
       learnt clauses are consequences of the clause set alone, so such
       a literal needs no assumption behind it and stays out of the
       core (nor is there a reason clause to resolve through). *)
    let is_boundary i =
      let n = Vec.size s.trail_lim in
      let rec go k = k < n && (Vec.get s.trail_lim k = i || go (k + 1)) in
      go 0
    in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = Cnf.var_of l in
      if seen.(v) then
        match s.reason.(v) with
        | None -> if is_boundary i then core := l :: !core
        | Some c -> Array.iter mark c.lits
    done;
    List.iter (fun v -> seen.(v) <- false) !marked;
    !core
  end

(* Attach a clause of >= 2 literals to the watch lists. *)
let attach s c =
  watch s (Cnf.negate c.lits.(0)) c;
  watch s (Cnf.negate c.lits.(1)) c

let record_learnt s lits =
  (match s.proof with
  | Some t -> Proof.log_add t (Array.of_list lits)
  | None -> ());
  match lits with
  | [] -> s.ok <- false
  | [ l ] ->
      (* asserting unit: enqueue at the backjumped (root) level *)
      enqueue s l None
  | first :: _ ->
      let arr = Array.of_list lits in
      (* watch the asserting literal and a literal from the backjump level *)
      let max_i = ref 1 in
      for i = 2 to Array.length arr - 1 do
        if s.level.(Cnf.var_of arr.(i)) > s.level.(Cnf.var_of arr.(!max_i))
        then max_i := i
      done;
      let tmp = arr.(1) in
      arr.(1) <- arr.(!max_i);
      arr.(!max_i) <- tmp;
      let c = { lits = arr; activity = 0.0; learnt = true; deleted = false } in
      Vec.push s.learnts c;
      attach s c;
      clause_bump s c;
      s.n_learnt_lits <- s.n_learnt_lits + Array.length arr;
      enqueue s first (Some c)

let add_clause s lits =
  if s.ok then begin
    s.n_clauses_added <- s.n_clauses_added + 1;
    List.iter (fun l -> ensure_vars s (Cnf.var_of l)) lits;
    if s.proof <> None then s.originals <- Array.of_list lits :: s.originals;
    (* root-level simplification: drop false lits, detect tautology *)
    let lits = List.sort_uniq compare lits in
    let tauto =
      List.exists (fun l -> List.mem (Cnf.negate l) lits) lits
      || List.exists (fun l -> value_lit s l = Cnf.True) lits
    in
    if not tauto then begin
      let lits = List.filter (fun l -> value_lit s l <> Cnf.False) lits in
      match lits with
      | [] ->
          s.ok <- false;
          log_empty s
      | [ l ] ->
          enqueue s l None;
          if propagate s <> None then begin
            s.ok <- false;
            log_empty s
          end
      | _ ->
          let arr = Array.of_list lits in
          let c = { lits = arr; activity = 0.0; learnt = false; deleted = false } in
          Vec.push s.clauses c;
          attach s c
    end
  end

(* Reduce the learnt-clause database: drop the less active half, keeping
   clauses that are the current reason of an assignment. *)
let reduce_db s =
  let locked c =
    Array.length c.lits > 0
    &&
    match s.reason.(Cnf.var_of c.lits.(0)) with
    | Some r -> r == c
    | None -> false
  in
  Vec.sort (fun a b -> compare a.activity b.activity) s.learnts;
  let n = Vec.size s.learnts in
  let keep = Vec.create ~dummy:dummy_clause () in
  Vec.iteri
    (fun i c ->
      if i < n / 2 && (not (locked c)) && Array.length c.lits > 2 then begin
        c.deleted <- true;
        match s.proof with
        | Some t -> Proof.log_delete t c.lits
        | None -> ()
      end
      else Vec.push keep c)
    s.learnts;
  s.learnts <- keep

let pick_branch_lit s =
  let rec loop () =
    if Heap.is_empty s.order then None
    else
      let v = Heap.remove_max s.order in
      if s.assigns.(v) = Cnf.Unknown then
        Some (if s.polarity.(v) then Cnf.pos v else Cnf.neg v)
      else loop ()
  in
  loop ()

let extract_model s =
  let m = Array.make (s.nvars + 1) false in
  for v = 1 to s.nvars do
    m.(v) <- s.assigns.(v) = Cnf.True
  done;
  m

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby i =
  let rec expand sz seq = if sz < i + 1 then expand ((2 * sz) + 1) (seq + 1) else (sz, seq) in
  let rec reduce x sz seq =
    if sz - 1 = x then float_of_int (1 lsl seq)
    else
      let sz = (sz - 1) / 2 in
      reduce (x mod sz) sz (seq - 1)
  in
  let sz, seq = expand 1 0 in
  reduce i sz seq

(* Portfolio diversification: nudge the VSIDS tie-breaking order with
   tiny seeded activity offsets (real conflict bumps dwarf them within a
   few conflicts) and scramble the initial saved phases. Distinct seeds
   steer otherwise-identical solvers into different parts of the search
   tree, which is what makes racing them worthwhile. *)
let diversify s (config : config) =
  if config.invert_polarity then
    for v = 1 to s.nvars do
      s.polarity.(v) <- true
    done;
  if config.seed <> 0 then begin
    let rng = Netsim.Rng.create config.seed in
    for v = 1 to s.nvars do
      Heap.bump s.order v (1e-6 *. Netsim.Rng.float rng 1.0);
      if Netsim.Rng.bool rng then s.polarity.(v) <- not s.polarity.(v)
    done
  end

let solve_core ~assumptions ~budget ~config ~stop s =
  s.conflict_core <- [];
  if not s.ok then Decided Unsat
  else begin
    (* make sure assumption variables exist *)
    List.iter (fun l -> ensure_vars s (Cnf.var_of l)) assumptions;
    cancel_until s 0;
    if config <> default_config then diversify s config;
    if propagate s <> None then begin
      s.ok <- false;
      log_empty s;
      Decided Unsat
    end
    else begin
      let result = ref None in
      let restart_num = ref 0 in
      let conflicts_since_restart = ref 0 in
      let max_learnts = ref (max 1000 (Vec.size s.clauses / 3)) in
      (* budget accounting is per solve call, not per solver lifetime *)
      let conflicts0 = s.n_conflicts and propagations0 = s.n_propagations in
      (* push assumptions as pseudo-decisions; [Some core] on failure *)
      let rec push_assumptions = function
        | [] -> None
        | l :: rest -> (
            match value_lit s l with
            | Cnf.True -> push_assumptions rest
            | Cnf.False ->
                (* l is refuted by root facts and earlier assumptions:
                   the core is l plus whatever implied its negation *)
                Some (l :: analyze_final s [| l |])
            | Cnf.Unknown -> (
                Vec.push s.trail_lim (Vec.size s.trail);
                enqueue s l None;
                match propagate s with
                | Some c -> Some (analyze_final s c.lits)
                | None -> push_assumptions rest))
      in
      match push_assumptions assumptions with
      | Some core ->
          cancel_until s 0;
          s.conflict_core <- core;
          Decided Unsat
      | None ->
        begin
        let assumption_level = decision_level s in
        let restart_limit () = config.restart_base *. luby !restart_num in
        (* the budget AND the cancellation hook are polled here, at every
           conflict/decision boundary — not just at restarts — so a
           portfolio loser stops within one conflict of the winner's
           verdict *)
        while !result = None do
          let conflicts = s.n_conflicts - conflicts0 in
          let propagations = s.n_propagations - propagations0 in
          let status =
            if stop () then Netsim.Budget.Expired "cancelled"
            else Netsim.Budget.check ~conflicts ~propagations budget
          in
          match status with
          | Netsim.Budget.Expired reason ->
              cancel_until s 0;
              result := Some (Unknown { reason; conflicts; propagations })
          | Netsim.Budget.Within -> (
              match propagate s with
              | Some confl ->
                  s.n_conflicts <- s.n_conflicts + 1;
                  incr conflicts_since_restart;
                  if decision_level s <= assumption_level then begin
                    (* conflict at the assumption level or below: unsat.
                       At level 0 the clause set itself is refuted — no
                       assumption was even involved — so the solver is
                       dead for good: close the DRUP trail AND mark it
                       unsatisfiable, or a later warm reuse would skip
                       the (already fully propagated) conflict and
                       fabricate a model. Above level 0 only the
                       assumptions are refuted: compute the failed core
                       (before the trail is cancelled) and stay
                       reusable. *)
                    if decision_level s = 0 then begin
                      s.ok <- false;
                      log_empty s
                    end
                    else s.conflict_core <- analyze_final s confl.lits;
                    cancel_until s 0;
                    result := Some (Decided Unsat)
                  end
                  else begin
                    let learnt, btlevel = analyze s confl in
                    let btlevel = max btlevel assumption_level in
                    cancel_until s btlevel;
                    record_learnt s learnt;
                    if not s.ok then result := Some (Decided Unsat)
                    else begin
                      s.var_inc <- s.var_inc *. var_decay;
                      s.cla_inc <- s.cla_inc *. clause_decay
                    end
                  end
              | None ->
                  if
                    float_of_int !conflicts_since_restart >= restart_limit ()
                    && decision_level s > assumption_level
                  then begin
                    s.n_restarts <- s.n_restarts + 1;
                    incr restart_num;
                    conflicts_since_restart := 0;
                    cancel_until s assumption_level
                  end
                  else begin
                    if Vec.size s.learnts >= !max_learnts then begin
                      reduce_db s;
                      max_learnts := !max_learnts + (!max_learnts / 10)
                    end;
                    match pick_branch_lit s with
                    | None ->
                        let m = extract_model s in
                        cancel_until s 0;
                        assert (Cnf.check_model m (Vec.fold (fun acc c -> c.lits :: acc) [] s.clauses));
                        result := Some (Decided (Sat m))
                    | Some l ->
                        s.n_decisions <- s.n_decisions + 1;
                        Vec.push s.trail_lim (Vec.size s.trail);
                        enqueue s l None
                  end)
        done;
        match !result with Some r -> r | None -> assert false
      end
    end
  end

let never_stop () = false

let solve_bounded ?(assumptions = []) ?(config = default_config)
    ?(stop = never_stop) ~budget s =
  solve_core ~assumptions ~budget ~config ~stop s

let failed_assumptions s = s.conflict_core

let solve ?(assumptions = []) ?(certify = false) s =
  if certify && assumptions <> [] then
    invalid_arg "Solver.solve: ~certify does not support assumptions";
  if certify && s.proof = None then
    invalid_arg
      "Solver.solve: ~certify requires proof logging (enable_proof or \
       of_problem ~proof:true)";
  let r =
    match
      solve_core ~assumptions ~budget:Netsim.Budget.unlimited
        ~config:default_config ~stop:never_stop s
    with
    | Decided r -> r
    | Unknown _ -> assert false (* unlimited budgets never expire *)
  in
  if certify then begin
    let p = original_problem s in
    let cert =
      match r with
      | Sat m -> Proof.Model m
      | Unsat -> Proof.Refutation (proof_steps s)
    in
    match Proof.certify p cert with
    | Ok report -> s.last_certification <- Some report
    | Error msg -> raise (Proof.Certification_failed msg)
  end;
  r

(* Certified solve under assumptions, for warm (session) solvers.

   [solve ~certify] rejects assumptions because a DRUP trail under
   assumptions does not refute the clause set alone. Here the assumed
   problem — original clauses plus one unit clause per assumption — is
   what gets certified, and the session trail needs no rewriting: every
   clause the solver learns is derived by resolution from the clause
   database only (assumption pseudo-decisions have no reason clause, so
   they surface as negated literals *inside* learnt clauses, never as
   premises), hence each logged Add is RUP against the originals plus
   earlier Adds, with or without the assumption units. An Unsat-under-
   assumptions verdict ends in a conflict reached by unit propagation
   from root facts and the assumption units, so the per-cell trail
   slice is closed by appending one empty-clause Add, which is RUP once
   the assumption units are axioms. A Sat verdict is certified as a
   model of the assumed problem (assumptions were on the trail when the
   model was extracted). The solver is NOT mutated beyond the normal
   warm-solve effects: no unit clauses are added, so the session stays
   reusable under different assumptions. *)
let solve_assuming_certified ~assumptions s =
  if s.proof = None then
    invalid_arg
      "Solver.solve_assuming_certified: requires proof logging \
       (enable_proof or of_problem ~proof:true)";
  let r =
    match
      solve_core ~assumptions ~budget:Netsim.Budget.unlimited
        ~config:default_config ~stop:never_stop s
    with
    | Decided r -> r
    | Unknown _ -> assert false (* unlimited budgets never expire *)
  in
  let p = original_problem s in
  let assumed =
    List.fold_left (fun p l -> Cnf.add_clause p [ l ]) p assumptions
  in
  let cert =
    match r with
    | Sat m -> Proof.Model m
    | Unsat -> Proof.Refutation (proof_steps s @ [ Proof.Add [||] ])
  in
  (match Proof.certify assumed cert with
  | Ok report -> s.last_certification <- Some report
  | Error msg -> raise (Proof.Certification_failed msg));
  r

let of_problem ?(proof = false) (p : Cnf.problem) =
  let s = create () in
  if proof then enable_proof s;
  ensure_vars s p.num_vars;
  List.iter (fun c -> add_clause s (Array.to_list c)) (List.rev p.clauses);
  s

let solve_problem ?(certify = false) p =
  solve ~certify (of_problem ~proof:certify p)

let stats s =
  {
    decisions = s.n_decisions;
    propagations = s.n_propagations;
    conflicts = s.n_conflicts;
    restarts = s.n_restarts;
    learnt_literals = s.n_learnt_lits;
    max_vars = s.nvars;
    clauses_added = s.n_clauses_added;
  }

let pp_stats ppf st =
  Format.fprintf ppf
    "vars=%d clauses=%d decisions=%d propagations=%d conflicts=%d restarts=%d"
    st.max_vars st.clauses_added st.decisions st.propagations st.conflicts
    st.restarts
