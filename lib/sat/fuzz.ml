type failure = { index : int; detail : string; dimacs : string }

type outcome = {
  instances : int;
  sat_instances : int;
  unsat_instances : int;
  proof_additions : int;
  proof_deletions : int;
  certification_time : float;
  failures : failure list;
}

let random_problem rng ~k ~num_vars ~num_clauses =
  if k > num_vars then invalid_arg "Fuzz.random_problem: k > num_vars";
  let problem = ref { Cnf.num_vars; clauses = [] } in
  for _ = 1 to num_clauses do
    let rec draw acc n =
      if n = 0 then acc
      else
        let v = 1 + Netsim.Rng.int rng num_vars in
        if List.mem v acc then draw acc n else draw (v :: acc) (n - 1)
    in
    let lits =
      List.map
        (fun v -> if Netsim.Rng.bool rng then Cnf.pos v else Cnf.neg v)
        (draw [] k)
    in
    problem := Cnf.add_clause !problem lits
  done;
  !problem

let default_ratios = [ 1.5; 3.0; 4.26; 6.0 ]

let run ?(ks = [ 2; 3 ]) ?(min_vars = 8) ?(max_vars = 20)
    ?(ratios = default_ratios) ~count ~seed () =
  if ks = [] || ratios = [] then invalid_arg "Fuzz.run: empty ks or ratios";
  let rng = Netsim.Rng.create seed in
  let sat_instances = ref 0 in
  let unsat_instances = ref 0 in
  let proof_additions = ref 0 in
  let proof_deletions = ref 0 in
  let certification_time = ref 0.0 in
  let failures = ref [] in
  for index = 0 to count - 1 do
    let k = Netsim.Rng.pick rng ks in
    let num_vars = Netsim.Rng.int_in rng (max k min_vars) max_vars in
    let ratio = Netsim.Rng.pick rng ratios in
    let num_clauses =
      max 1 (int_of_float ((float_of_int num_vars *. ratio) +. 0.5))
    in
    let p = random_problem rng ~k ~num_vars ~num_clauses in
    let fail detail =
      failures :=
        { index; detail; dimacs = Dimacs.to_string p } :: !failures
    in
    let solver = Solver.of_problem ~proof:true p in
    match Solver.solve ~certify:true solver with
    | exception Proof.Certification_failed msg ->
        fail (Printf.sprintf "certification failed: %s" msg)
    | cdcl -> (
        (match Solver.last_certification solver with
        | Some r ->
            proof_additions := !proof_additions + r.Proof.additions;
            proof_deletions := !proof_deletions + r.Proof.deletions;
            certification_time := !certification_time +. r.Proof.check_time
        | None -> fail "certified solve produced no report");
        let dpll = Dpll.solve p in
        match (cdcl, dpll) with
        | Solver.Sat _, Solver.Sat _ -> incr sat_instances
        | Solver.Unsat, Solver.Unsat -> incr unsat_instances
        | Solver.Sat _, Solver.Unsat ->
            fail "disagreement: CDCL says SAT, DPLL says UNSAT"
        | Solver.Unsat, Solver.Sat _ ->
            fail "disagreement: CDCL says UNSAT, DPLL says SAT")
  done;
  {
    instances = count;
    sat_instances = !sat_instances;
    unsat_instances = !unsat_instances;
    proof_additions = !proof_additions;
    proof_deletions = !proof_deletions;
    certification_time = !certification_time;
    failures = List.rev !failures;
  }

let pp_outcome ppf o =
  Format.fprintf ppf
    "%d instances (%d sat, %d unsat), %d proof additions, %d deletions, \
     certified in %.3fs, %d failure%s"
    o.instances o.sat_instances o.unsat_instances o.proof_additions
    o.proof_deletions o.certification_time (List.length o.failures)
    (if List.length o.failures = 1 then "" else "s");
  List.iter
    (fun f -> Format.fprintf ppf "@.  instance %d: %s" f.index f.detail)
    o.failures
