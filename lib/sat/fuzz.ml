type failure = { index : int; detail : string; dimacs : string }

type outcome = {
  instances : int;
  sat_instances : int;
  unsat_instances : int;
  proof_additions : int;
  proof_deletions : int;
  certification_time : float;
  failures : failure list;
}

let random_problem rng ~k ~num_vars ~num_clauses =
  if k > num_vars then invalid_arg "Fuzz.random_problem: k > num_vars";
  let problem = ref { Cnf.num_vars; clauses = [] } in
  for _ = 1 to num_clauses do
    let rec draw acc n =
      if n = 0 then acc
      else
        let v = 1 + Netsim.Rng.int rng num_vars in
        if List.mem v acc then draw acc n else draw (v :: acc) (n - 1)
    in
    let lits =
      List.map
        (fun v -> if Netsim.Rng.bool rng then Cnf.pos v else Cnf.neg v)
        (draw [] k)
    in
    problem := Cnf.add_clause !problem lits
  done;
  !problem

let default_ratios = [ 1.5; 3.0; 4.26; 6.0 ]

let run ?(ks = [ 2; 3 ]) ?(min_vars = 8) ?(max_vars = 20)
    ?(ratios = default_ratios) ~count ~seed () =
  if ks = [] || ratios = [] then invalid_arg "Fuzz.run: empty ks or ratios";
  let rng = Netsim.Rng.create seed in
  let sat_instances = ref 0 in
  let unsat_instances = ref 0 in
  let proof_additions = ref 0 in
  let proof_deletions = ref 0 in
  let certification_time = ref 0.0 in
  let failures = ref [] in
  for index = 0 to count - 1 do
    let k = Netsim.Rng.pick rng ks in
    let num_vars = Netsim.Rng.int_in rng (max k min_vars) max_vars in
    let ratio = Netsim.Rng.pick rng ratios in
    let num_clauses =
      max 1 (int_of_float ((float_of_int num_vars *. ratio) +. 0.5))
    in
    let p = random_problem rng ~k ~num_vars ~num_clauses in
    let fail detail =
      failures :=
        { index; detail; dimacs = Dimacs.to_string p } :: !failures
    in
    let solver = Solver.of_problem ~proof:true p in
    match Solver.solve ~certify:true solver with
    | exception Proof.Certification_failed msg ->
        fail (Printf.sprintf "certification failed: %s" msg)
    | cdcl -> (
        (match Solver.last_certification solver with
        | Some r ->
            proof_additions := !proof_additions + r.Proof.additions;
            proof_deletions := !proof_deletions + r.Proof.deletions;
            certification_time := !certification_time +. r.Proof.check_time
        | None -> fail "certified solve produced no report");
        let dpll = Dpll.solve p in
        match (cdcl, dpll) with
        | Solver.Sat _, Solver.Sat _ -> incr sat_instances
        | Solver.Unsat, Solver.Unsat -> incr unsat_instances
        | Solver.Sat _, Solver.Unsat ->
            fail "disagreement: CDCL says SAT, DPLL says UNSAT"
        | Solver.Unsat, Solver.Sat _ ->
            fail "disagreement: CDCL says UNSAT, DPLL says SAT")
  done;
  {
    instances = count;
    sat_instances = !sat_instances;
    unsat_instances = !unsat_instances;
    proof_additions = !proof_additions;
    proof_deletions = !proof_deletions;
    certification_time = !certification_time;
    failures = List.rev !failures;
  }

(* ---- solver-reuse differential: warm vs fresh on a schedule ------- *)

type reuse_op = Solve_with of Cnf.lit list | Add_clause of Cnf.lit list

let int_of_lit l =
  if Cnf.is_pos l then Cnf.var_of l else -Cnf.var_of l

let pp_op ppf = function
  | Solve_with a ->
      Format.fprintf ppf "solve[%s]"
        (String.concat ","
           (List.map (fun l -> string_of_int (int_of_lit l)) a))
  | Add_clause c ->
      Format.fprintf ppf "add(%s)"
        (String.concat " "
           (List.map (fun l -> string_of_int (int_of_lit l)) c))

let pp_schedule ppf ops =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_op
    ppf ops

(* Replays [ops] on ONE warm solver, checking every [Solve_with] step
   against a cold solver built from scratch over the clauses added so
   far. Returns the first divergence, or [None] when the whole schedule
   agrees. The fresh solver is the oracle: if the warm one ever answers
   differently, state leaked across calls. *)
let check_schedule problem ops =
  let warm = Solver.of_problem problem in
  let added = ref [] (* clauses added after the base problem, reversed *) in
  let rec step i = function
    | [] -> None
    | Add_clause c :: rest ->
        Solver.add_clause warm c;
        added := c :: !added;
        step (i + 1) rest
    | Solve_with assumptions :: rest -> (
        let current () =
          List.fold_left Cnf.add_clause problem (List.rev !added)
        in
        (* a crash is a divergence too — shrink it like any mismatch *)
        match
          let warm_r = Solver.solve ~assumptions warm in
          let fresh_r =
            Solver.solve ~assumptions (Solver.of_problem (current ()))
          in
          (warm_r, fresh_r)
        with
        | exception e -> Some (i, "exception: " ^ Printexc.to_string e)
        | Solver.Sat m, Solver.Sat _ ->
            (* models may legitimately differ; the warm one must satisfy
               the current clauses AND the assumptions *)
            let assumed =
              List.fold_left
                (fun p l -> Cnf.add_clause p [ l ])
                (current ()) assumptions
            in
            if Cnf.check_model m assumed.Cnf.clauses then step (i + 1) rest
            else Some (i, "warm model violates current clauses/assumptions")
        | Solver.Unsat, Solver.Unsat ->
            (* the failed-assumption core must itself be unsatisfiable
               with the current clauses *)
            let core = Solver.failed_assumptions warm in
            if not (List.for_all (fun l -> List.mem l assumptions) core)
            then Some (i, "failed_assumptions not a subset of assumptions")
            else
              let with_core =
                List.fold_left
                  (fun p l -> Cnf.add_clause p [ l ])
                  (current ()) core
              in
              if Solver.solve (Solver.of_problem with_core) <> Solver.Unsat
              then Some (i, "failed_assumptions core is not unsatisfiable")
              else step (i + 1) rest
        | Solver.Sat _, Solver.Unsat ->
            Some (i, "warm says SAT, fresh says UNSAT")
        | Solver.Unsat, Solver.Sat _ ->
            Some (i, "warm says UNSAT, fresh says SAT"))
  in
  step 0 ops

(* Greedy shrinking: repeatedly drop single ops (and single assumption
   literals inside solves) while the schedule still fails. *)
let shrink_schedule problem ops =
  let fails ops = check_schedule problem ops <> None in
  let drop_nth n l = List.filteri (fun i _ -> i <> n) l in
  let rec shrink ops =
    let n = List.length ops in
    let rec try_drop i =
      if i >= n then None
      else
        let candidate = drop_nth i ops in
        if fails candidate then Some candidate else try_drop (i + 1)
    in
    let rec try_thin i =
      if i >= n then None
      else
        match List.nth ops i with
        | Solve_with (_ :: _ as a) ->
            let rec thin j =
              if j >= List.length a then None
              else
                let candidate =
                  List.mapi
                    (fun k op ->
                      if k = i then Solve_with (drop_nth j a) else op)
                    ops
                in
                if fails candidate then Some candidate else thin (j + 1)
            in
            (match thin 0 with None -> try_thin (i + 1) | s -> s)
        | _ -> try_thin (i + 1)
    in
    match try_drop 0 with
    | Some smaller -> shrink smaller
    | None -> (
        match try_thin 0 with Some smaller -> shrink smaller | None -> ops)
  in
  shrink ops

let random_schedule rng ~num_vars ~ops =
  let lit () =
    let v = 1 + Netsim.Rng.int rng num_vars in
    if Netsim.Rng.bool rng then Cnf.pos v else Cnf.neg v
  in
  List.init ops (fun _ ->
      if Netsim.Rng.int rng 10 < 6 then
        Solve_with (List.init (Netsim.Rng.int rng 4) (fun _ -> lit ()))
      else Add_clause (List.init (1 + Netsim.Rng.int rng 3) (fun _ -> lit ())))

type reuse_outcome = {
  schedules : int;
  reuse_solves : int;  (** warm [Solve_with] steps checked against a cold oracle *)
  reuse_failures : failure list;
}

let run_reuse ?(min_vars = 6) ?(max_vars = 16) ?(max_ops = 12) ~count ~seed ()
    =
  let rng = Netsim.Rng.create seed in
  let failures = ref [] in
  let solves = ref 0 in
  for index = 0 to count - 1 do
    let num_vars = Netsim.Rng.int_in rng min_vars max_vars in
    let ratio = Netsim.Rng.pick rng default_ratios in
    let num_clauses =
      max 1 (int_of_float ((float_of_int num_vars *. ratio) +. 0.5))
    in
    let k = Netsim.Rng.pick rng [ 2; 3 ] in
    let p = random_problem rng ~k ~num_vars ~num_clauses in
    let ops = random_schedule rng ~num_vars ~ops:(1 + Netsim.Rng.int rng max_ops) in
    solves :=
      !solves
      + List.length (List.filter (function Solve_with _ -> true | _ -> false) ops);
    match check_schedule p ops with
    | None -> ()
    | Some _ ->
        let small = shrink_schedule p ops in
        let step, what =
          match check_schedule p small with
          | Some (i, d) -> (i, d)
          | None -> assert false (* shrinking preserves failure *)
        in
        failures :=
          {
            index;
            detail =
              Format.asprintf "step %d: %s — schedule: %a" step what
                pp_schedule small;
            dimacs = Dimacs.to_string p;
          }
          :: !failures
  done;
  {
    schedules = count;
    reuse_solves = !solves;
    reuse_failures = List.rev !failures;
  }

let pp_reuse_outcome ppf o =
  Format.fprintf ppf "%d schedules, %d warm solves checked, %d failure%s"
    o.schedules o.reuse_solves
    (List.length o.reuse_failures)
    (if List.length o.reuse_failures = 1 then "" else "s");
  List.iter
    (fun f -> Format.fprintf ppf "@.  schedule %d: %s" f.index f.detail)
    o.reuse_failures

let pp_outcome ppf o =
  Format.fprintf ppf
    "%d instances (%d sat, %d unsat), %d proof additions, %d deletions, \
     certified in %.3fs, %d failure%s"
    o.instances o.sat_instances o.unsat_instances o.proof_additions
    o.proof_deletions o.certification_time (List.length o.failures)
    (if List.length o.failures = 1 then "" else "s");
  List.iter
    (fun f -> Format.fprintf ppf "@.  instance %d: %s" f.index f.detail)
    o.failures
