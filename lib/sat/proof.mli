(** Verdict certification: DRUP proof trails, an independent proof
    checker and a strict model certifier.

    The solver's [Unsat] answers are the load-bearing direction of every
    Alloy-lite [check] (an unsatisfiable counterexample query means the
    assertion holds in scope), yet without a certificate they rest
    entirely on the CDCL implementation being bug-free. This module
    closes that gap: {!Solver} can log every learnt and deleted clause
    as a DRUP (Delete Reverse Unit Propagation) trail, and
    {!check_refutation} re-validates the trail against the original CNF
    using nothing but naive occurrence-list unit propagation — no code
    is shared with the solver's watched-literal loop, so a bug must be
    present in two independent implementations to go unnoticed. The
    [Sat] direction is covered by {!check_model}, which re-evaluates
    every original clause under the returned assignment. *)

(** One DRUP proof event, in solver order: [Add] for a learnt clause
    (the empty array closes the refutation), [Delete] for a clause
    dropped from the learnt database. *)
type step = Add of Cnf.lit array | Delete of Cnf.lit array

(** A mutable in-memory proof trail, appended to by the solver. *)
type trail

exception Certification_failed of string
(** Raised by certifying entry points ({!Solver.solve} with
    [~certify:true]) when a verdict's certificate is rejected — i.e. a
    solver bug was caught in the act. *)

val create : unit -> trail

val log_add : trail -> Cnf.lit array -> unit
(** Appends an addition step (the array is copied). *)

val log_delete : trail -> Cnf.lit array -> unit
(** Appends a deletion step (the array is copied). *)

val steps : trail -> step list
(** The trail in chronological order. *)

val num_additions : trail -> int
val num_deletions : trail -> int

val check_model : Cnf.problem -> Cnf.model -> (unit, string) result
(** [check_model p m] is the strict [Sat] certifier: every clause of [p]
    must contain a literal true under [m], and [m] must cover every
    variable. The error message names the first falsified clause. *)

val check_refutation : Cnf.problem -> step list -> (unit, string) result
(** [check_refutation p steps] validates a DRUP refutation: each added
    clause must be derivable by reverse unit propagation from the
    original clauses plus the previously added (and not yet deleted)
    ones, and the trail must derive the empty clause. Steps after the
    empty clause are ignored. Deletions of clauses not present are
    ignored, as in standard DRUP checkers (they can only make checking
    harder, never unsound). *)

(** What a verdict is certified by: a satisfying assignment or a DRUP
    refutation trail. *)
type certificate = Model of Cnf.model | Refutation of step list

(** Outcome of a successful certification, for reporting: proof size
    and the time the independent check took. *)
type report = {
  kind : [ `Model | `Refutation ];
  additions : int;  (** clause additions in the trail (0 for models) *)
  deletions : int;  (** clause deletions in the trail (0 for models) *)
  check_time : float;  (** seconds spent in the independent checker *)
}

val certify : Cnf.problem -> certificate -> (report, string) result
(** Runs the appropriate checker and times it. *)

val pp_step : Format.formatter -> step -> unit
val pp_report : Format.formatter -> report -> unit
