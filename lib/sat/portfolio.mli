(** Solver portfolio: race diversified engines, first verdict wins.

    The portfolio runs several differently-configured copies of the
    CDCL solver ({!Solver.diversified}: restart interval, initial
    polarity, seeded VSIDS perturbation) — plus the DPLL baseline as a
    wildcard on small instances — on the {e same} CNF across domains
    ({!Parallel.Race}). SAT/UNSAT verdicts are mutually exclusive and
    every engine is sound, so whichever engine answers first determines
    the result; the rest are cancelled through the engines'
    conflict-boundary [stop] hook.

    With [~certify:true] the race is restricted to CDCL members (DPLL
    logs no DRUP trail) and the winner's verdict is validated by the
    independent {!Proof} checker before being returned — racing never
    weakens the certification story. *)

type engine = Cdcl of Solver.config | Dpll_baseline

val label : engine -> string

type verdict = {
  result : Solver.bounded_result;
      (** [Unknown] only when every engine exhausted its budget *)
  winner : string option;  (** label of the engine that answered *)
  engines : string list;  (** labels of the racing engines, in order *)
  certification : Proof.report option;
      (** present iff [~certify:true] and a SAT call was won *)
}

val default_engines : ?certify:bool -> jobs:int -> unit -> engine list
(** [max 2 jobs] members: diversified CDCL configurations, the last
    slot given to DPLL unless [certify]. *)

val solve :
  ?jobs:int ->
  ?certify:bool ->
  ?budget:Netsim.Budget.t ->
  ?engines:engine list ->
  Cnf.problem ->
  verdict
(** Races the engines with at most [jobs] (default 1) concurrent
    domains; each engine's budget window opens when it starts. With
    [jobs = 1] engines run sequentially in list order until one
    decides. Raises [Invalid_argument] on [jobs < 1], an empty engine
    list, or a [~certify] race containing [Dpll_baseline]; raises
    {!Proof.Certification_failed} when the winner's certificate is
    rejected (a solver bug was caught). *)
