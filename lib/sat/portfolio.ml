type engine = Cdcl of Solver.config | Dpll_baseline

let label = function
  | Cdcl c ->
      if c = Solver.default_config then "cdcl:0"
      else
        Printf.sprintf "cdcl:%d(r%.0f%s)" c.Solver.seed c.Solver.restart_base
          (if c.Solver.invert_polarity then ",pol+" else "")
  | Dpll_baseline -> "dpll"

type verdict = {
  result : Solver.bounded_result;
  winner : string option;
  engines : string list;
  certification : Proof.report option;
}

let default_engines ?(certify = false) ~jobs () =
  let n = max 2 jobs in
  if certify then List.init n (fun k -> Cdcl (Solver.diversified k))
  else List.init (n - 1) (fun k -> Cdcl (Solver.diversified k)) @ [ Dpll_baseline ]

let solve ?(jobs = 1) ?(certify = false) ?(budget = Netsim.Budget.unlimited)
    ?engines (p : Cnf.problem) =
  if jobs < 1 then invalid_arg "Portfolio.solve: jobs < 1";
  let engines =
    match engines with Some es -> es | None -> default_engines ~certify ~jobs ()
  in
  if engines = [] then invalid_arg "Portfolio.solve: empty engine list";
  if certify && List.mem Dpll_baseline engines then
    invalid_arg
      "Portfolio.solve: ~certify requires a CDCL-only portfolio (DPLL \
       produces no DRUP trail)";
  let labels = List.map label engines in
  let racers =
    Array.of_list
      (List.map
         (fun engine ~stop ->
           let budget = Netsim.Budget.restarted budget in
           match engine with
           | Cdcl config -> (
               let s = Solver.of_problem ~proof:certify p in
               match Solver.solve_bounded ~config ~stop ~budget s with
               | Solver.Decided r -> Some (r, Some s)
               | Solver.Unknown _ -> None)
           | Dpll_baseline -> (
               match Dpll.solve_bounded ~stop ~budget p with
               | Solver.Decided r -> Some (r, None)
               | Solver.Unknown _ -> None))
         engines)
  in
  match Parallel.Race.run ~jobs racers with
  | None ->
      {
        result =
          Solver.Unknown
            { reason = "portfolio budget exhausted"; conflicts = 0;
              propagations = 0 };
        winner = None;
        engines = labels;
        certification = None;
      }
  | Some (i, (r, solver)) ->
      let certification =
        match (certify, solver) with
        | false, _ | _, None -> None
        | true, Some s -> (
            let original = Solver.original_problem s in
            let certificate =
              match r with
              | Solver.Sat m -> Proof.Model m
              | Solver.Unsat -> Proof.Refutation (Solver.proof_steps s)
            in
            match Proof.certify original certificate with
            | Ok report -> Some report
            | Error msg -> raise (Proof.Certification_failed msg))
      in
      {
        result = Solver.Decided r;
        winner = Some (List.nth labels i);
        engines = labels;
        certification;
      }
