(** Plain DPLL solver (unit propagation + chronological backtracking, no
    learning). Exponentially slower than {!Solver} on hard instances but
    simple enough to be obviously correct: the test suite uses it as an
    oracle against the CDCL engine, and the benchmark harness uses it as
    the baseline the paper's Alloy-vs-naive comparisons call for. *)

val solve : Cnf.problem -> Solver.result
(** Decides the problem by depth-first search. *)

val solve_with_limit : max_decisions:int -> Cnf.problem -> Solver.result option
(** Same, but gives up (returns [None]) after [max_decisions] branching
    steps. *)

val solve_bounded :
  ?stop:(unit -> bool) ->
  budget:Netsim.Budget.t ->
  Cnf.problem ->
  Solver.bounded_result
(** The portfolio entry point: decisions count against the budget's
    step cap, the wall clock is polled per decision, and [stop] is the
    same cooperative-cancellation hook as
    {!Solver.solve_bounded} — when it flips to [true] the search
    returns [Unknown {reason = "cancelled"; _}] within one decision.
    [Unknown.conflicts] reports decisions (DPLL learns no clauses). *)
