(** Differential fuzzing of the SAT engines with certified verdicts.

    Generates seeded random k-CNF instances across a spread of
    clause/variable ratios (straddling the k=3 phase transition at
    ~4.26), then runs every instance through both the CDCL solver
    ({!Solver}, with [~certify:true]) and the DPLL reference oracle
    ({!Dpll}), recording any disagreement or certification failure.
    Seeding goes through {!Netsim.Rng}, the library-wide splittable
    PRNG, so a run is reproducible from a single integer. *)

type failure = {
  index : int;  (** which instance of the run (0-based) *)
  detail : string;  (** what went wrong *)
  dimacs : string;  (** the offending instance, for replay *)
}

type outcome = {
  instances : int;
  sat_instances : int;
  unsat_instances : int;
  proof_additions : int;
      (** total DRUP additions across all certified [Unsat] verdicts *)
  proof_deletions : int;
  certification_time : float;  (** total seconds in the independent checker *)
  failures : failure list;
}

val random_problem :
  Netsim.Rng.t -> k:int -> num_vars:int -> num_clauses:int -> Cnf.problem
(** Uniform random k-CNF with distinct variables per clause, drawn from
    the given stream. *)

val run :
  ?ks:int list ->
  ?min_vars:int ->
  ?max_vars:int ->
  ?ratios:float list ->
  count:int ->
  seed:int ->
  unit ->
  outcome
(** [run ~count ~seed ()] fuzzes [count] instances. Defaults:
    [ks = [2; 3]], [min_vars = 8], [max_vars = 20],
    [ratios = [1.5; 3.0; 4.26; 6.0]]. An empty [failures] list means
    CDCL and DPLL agreed everywhere and every verdict carried a valid
    certificate. *)

val pp_outcome : Format.formatter -> outcome -> unit

(** {2 Solver-reuse differential}

    Random {e schedules} of interleaved operations against one warm
    solver — solve under assumptions, change the assumptions, solve
    again, add clauses in between — where every solve is checked
    against a cold solver built from scratch over the clauses added so
    far. Any divergence means state leaked across calls (the hazard
    class incremental sessions must exclude); failing schedules are
    greedily shrunk (dropping whole ops, then single assumption
    literals) before being reported. *)

type reuse_op =
  | Solve_with of Cnf.lit list  (** solve under these assumptions *)
  | Add_clause of Cnf.lit list

type reuse_outcome = {
  schedules : int;
  reuse_solves : int;
      (** warm [Solve_with] steps checked against a cold oracle *)
  reuse_failures : failure list;
      (** [detail] carries the shrunk schedule; [dimacs] the base CNF *)
}

val check_schedule : Cnf.problem -> reuse_op list -> (int * string) option
(** Replays one schedule; [Some (step, what)] identifies the first
    diverging solve. Beyond verdict equality it also checks that a warm
    [Sat] model satisfies the current clauses plus assumptions, and
    that a warm [Unsat] yields a {!Solver.failed_assumptions} core that
    is a subset of the assumptions and genuinely unsatisfiable with the
    current clauses. *)

val run_reuse :
  ?min_vars:int ->
  ?max_vars:int ->
  ?max_ops:int ->
  count:int ->
  seed:int ->
  unit ->
  reuse_outcome
(** [run_reuse ~count ~seed ()] fuzzes [count] random schedules over
    random base CNFs. Defaults: [min_vars = 6], [max_vars = 16],
    [max_ops = 12]. An empty [reuse_failures] means the warm solver was
    indistinguishable from a cold one at every step. *)

val pp_reuse_outcome : Format.formatter -> reuse_outcome -> unit
