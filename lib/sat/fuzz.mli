(** Differential fuzzing of the SAT engines with certified verdicts.

    Generates seeded random k-CNF instances across a spread of
    clause/variable ratios (straddling the k=3 phase transition at
    ~4.26), then runs every instance through both the CDCL solver
    ({!Solver}, with [~certify:true]) and the DPLL reference oracle
    ({!Dpll}), recording any disagreement or certification failure.
    Seeding goes through {!Netsim.Rng}, the library-wide splittable
    PRNG, so a run is reproducible from a single integer. *)

type failure = {
  index : int;  (** which instance of the run (0-based) *)
  detail : string;  (** what went wrong *)
  dimacs : string;  (** the offending instance, for replay *)
}

type outcome = {
  instances : int;
  sat_instances : int;
  unsat_instances : int;
  proof_additions : int;
      (** total DRUP additions across all certified [Unsat] verdicts *)
  proof_deletions : int;
  certification_time : float;  (** total seconds in the independent checker *)
  failures : failure list;
}

val random_problem :
  Netsim.Rng.t -> k:int -> num_vars:int -> num_clauses:int -> Cnf.problem
(** Uniform random k-CNF with distinct variables per clause, drawn from
    the given stream. *)

val run :
  ?ks:int list ->
  ?min_vars:int ->
  ?max_vars:int ->
  ?ratios:float list ->
  count:int ->
  seed:int ->
  unit ->
  outcome
(** [run ~count ~seed ()] fuzzes [count] instances. Defaults:
    [ks = [2; 3]], [min_vars = 8], [max_vars = 20],
    [ratios = [1.5; 3.0; 4.26; 6.0]]. An empty [failures] list means
    CDCL and DPLL agreed everywhere and every verdict carried a valid
    certificate. *)

val pp_outcome : Format.formatter -> outcome -> unit
