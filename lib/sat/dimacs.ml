let parse_string text =
  let lines = String.split_on_char '\n' text in
  let problem = ref Cnf.empty in
  let declared = ref None in
  let pending = ref [] in
  let line_no = ref 0 in
  let fail msg = failwith (Printf.sprintf "dimacs: line %d: %s" !line_no msg) in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> fail (Printf.sprintf "bad literal %S" tok)
    | Some 0 ->
        problem := Cnf.add_clause !problem (List.rev !pending);
        pending := []
    | Some i -> pending := Cnf.lit_of_int i :: !pending
  in
  List.iter
    (fun line ->
      incr line_no;
      let line = String.trim line in
      if line = "" || line.[0] = 'c' || line.[0] = '%' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; nc ] -> (
            match (int_of_string_opt nv, int_of_string_opt nc) with
            | Some nv, Some nc -> declared := Some (nv, nc)
            | _ -> fail "bad p-header counts")
        | _ -> fail "bad p-header"
      end
      else
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (( <> ) "")
        |> List.iter handle_token)
    lines;
  if !pending <> [] then
    problem := Cnf.add_clause !problem (List.rev !pending);
  (match !declared with
  | Some (nv, _) when nv > (!problem).num_vars ->
      problem := { !problem with num_vars = nv }
  | _ -> ());
  !problem

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string text

let print ppf (p : Cnf.problem) =
  Format.fprintf ppf "p cnf %d %d@." p.num_vars (Cnf.num_clauses p);
  List.iter
    (fun c ->
      Array.iter (fun l -> Format.fprintf ppf "%d " (Cnf.int_of_lit l)) c;
      Format.fprintf ppf "0@.")
    (List.rev p.clauses)

let to_string p = Format.asprintf "%a" print p

let write_file path p =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  print ppf p;
  Format.pp_print_flush ppf ();
  close_out oc

(* ---- DRUP proof trails ---- *)

let print_drup ppf steps =
  List.iter
    (fun s ->
      let lits =
        match s with
        | Proof.Delete lits ->
            Format.fprintf ppf "d ";
            lits
        | Proof.Add lits -> lits
      in
      Array.iter (fun l -> Format.fprintf ppf "%d " (Cnf.int_of_lit l)) lits;
      Format.fprintf ppf "0@.")
    steps

let drup_to_string steps = Format.asprintf "%a" print_drup steps

let write_drup_file path steps =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  print_drup ppf steps;
  Format.pp_print_flush ppf ();
  close_out oc

let parse_drup text =
  let steps = ref [] in
  let line_no = ref 0 in
  let fail msg = failwith (Printf.sprintf "drup: line %d: %s" !line_no msg) in
  List.iter
    (fun line ->
      incr line_no;
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else begin
        let deletion = String.length line > 0 && line.[0] = 'd' in
        let body =
          if deletion then String.sub line 1 (String.length line - 1) else line
        in
        let tokens =
          String.split_on_char ' ' body
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (( <> ) "")
        in
        let lits = ref [] in
        let closed = ref false in
        List.iter
          (fun tok ->
            if !closed then fail "literals after terminating 0"
            else
              match int_of_string_opt tok with
              | None -> fail (Printf.sprintf "bad literal %S" tok)
              | Some 0 -> closed := true
              | Some i -> lits := Cnf.lit_of_int i :: !lits)
          tokens;
        if not !closed then fail "missing terminating 0";
        let arr = Array.of_list (List.rev !lits) in
        steps := (if deletion then Proof.Delete arr else Proof.Add arr) :: !steps
      end)
    (String.split_on_char '\n' text);
  List.rev !steps

let print_result ppf = function
  | Solver.Unsat -> Format.fprintf ppf "s UNSATISFIABLE@."
  | Solver.Sat m ->
      Format.fprintf ppf "s SATISFIABLE@.v ";
      for v = 1 to Array.length m - 1 do
        Format.fprintf ppf "%d " (if m.(v) then v else -v)
      done;
      Format.fprintf ppf "0@."
