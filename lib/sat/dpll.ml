exception Out_of_budget
exception Stopped of string * int (* reason, decisions so far *)

(* Assignment: Cnf.value array, var-indexed. Clauses as lit lists. *)

let eval_clause assigns c =
  let sat = ref false in
  let unassigned = ref [] in
  Array.iter
    (fun l ->
      match assigns.(Cnf.var_of l) with
      | Cnf.Unknown -> unassigned := l :: !unassigned
      | v ->
          let t = if Cnf.is_pos l then v = Cnf.True else v = Cnf.False in
          if t then sat := true)
    c;
  (!sat, !unassigned)

(* Repeat unit propagation to fixpoint. Returns [None] on conflict,
   otherwise the list of newly assigned variables (for undo). *)
let propagate assigns clauses =
  let trail = ref [] in
  let conflict = ref false in
  let changed = ref true in
  while !changed && not !conflict do
    changed := false;
    List.iter
      (fun c ->
        if not !conflict then
          match eval_clause assigns c with
          | true, _ -> ()
          | false, [] -> conflict := true
          | false, [ l ] ->
              let v = Cnf.var_of l in
              assigns.(v) <- (if Cnf.is_pos l then Cnf.True else Cnf.False);
              trail := v :: !trail;
              changed := true
          | false, _ -> ())
      clauses
  done;
  if !conflict then begin
    List.iter (fun v -> assigns.(v) <- Cnf.Unknown) !trail;
    None
  end
  else Some !trail

let pick_unassigned assigns n =
  let rec loop v = if v > n then None else if assigns.(v) = Cnf.Unknown then Some v else loop (v + 1) in
  loop 1

let solve_internal ?(stop = fun () -> false) ?(wall = Netsim.Budget.unlimited)
    budget (p : Cnf.problem) =
  let assigns = Array.make (p.num_vars + 1) Cnf.Unknown in
  let decisions = ref 0 in
  let rec search () =
    match propagate assigns p.clauses with
    | None -> false
    | Some trail -> (
        match pick_unassigned assigns p.num_vars with
        | None -> true
        | Some v ->
            incr decisions;
            (match budget with
            | Some b when !decisions > b -> raise Out_of_budget
            | _ -> ());
            (* cancellation and wall budget polled per decision, the
               DPLL analogue of the CDCL conflict-boundary poll *)
            if stop () then raise (Stopped ("cancelled", !decisions));
            (match Netsim.Budget.check ~steps:!decisions wall with
            | Netsim.Budget.Expired reason ->
                raise (Stopped (reason, !decisions))
            | Netsim.Budget.Within -> ());
            let try_value value =
              assigns.(v) <- value;
              let ok = search () in
              if not ok then assigns.(v) <- Cnf.Unknown;
              ok
            in
            if try_value Cnf.True then true
            else if try_value Cnf.False then true
            else begin
              List.iter (fun w -> assigns.(w) <- Cnf.Unknown) trail;
              false
            end)
  in
  if search () then begin
    let m = Array.make (p.num_vars + 1) false in
    for v = 1 to p.num_vars do
      m.(v) <- assigns.(v) = Cnf.True
    done;
    assert (Cnf.check_model m p.clauses);
    Solver.Sat m
  end
  else Solver.Unsat

let solve p = solve_internal None p

let solve_with_limit ~max_decisions p =
  match solve_internal (Some max_decisions) p with
  | r -> Some r
  | exception Out_of_budget -> None

let solve_bounded ?stop ~budget p =
  match solve_internal ?stop ~wall:budget None p with
  | r -> Solver.Decided r
  | exception Stopped (reason, decisions) ->
      Solver.Unknown { reason; conflicts = decisions; propagations = 0 }
