(* DRUP proof trails and the independent certification pass.

   The checker shares no code with the solver: its unit propagation is
   a from-scratch implementation (per-clause watch indices, watcher
   lists keyed by the watched literal itself, a persistent root
   assignment with rollback for the per-step RUP tests), so the two
   sides can only agree on a wrong verdict if they contain the same bug
   independently. *)

type step = Add of Cnf.lit array | Delete of Cnf.lit array

type trail = {
  mutable rev_steps : step list;
  mutable additions : int;
  mutable deletions : int;
}

exception Certification_failed of string

let create () = { rev_steps = []; additions = 0; deletions = 0 }

let log_add t lits =
  t.rev_steps <- Add (Array.copy lits) :: t.rev_steps;
  t.additions <- t.additions + 1

let log_delete t lits =
  t.rev_steps <- Delete (Array.copy lits) :: t.rev_steps;
  t.deletions <- t.deletions + 1

let steps t = List.rev t.rev_steps
let num_additions t = t.additions
let num_deletions t = t.deletions

let pp_clause ppf c =
  if Array.length c = 0 then Format.pp_print_string ppf "<empty>"
  else
    Array.iteri
      (fun i l ->
        if i > 0 then Format.pp_print_char ppf ' ';
        Cnf.pp_lit ppf l)
      c

let pp_step ppf = function
  | Add c -> Format.fprintf ppf "add %a" pp_clause c
  | Delete c -> Format.fprintf ppf "delete %a" pp_clause c

(* ---- strict model certification ---- *)

let check_model (p : Cnf.problem) (m : Cnf.model) =
  if Array.length m < p.num_vars + 1 then
    Error
      (Printf.sprintf "model covers %d variables but the problem has %d"
         (max 0 (Array.length m - 1))
         p.num_vars)
  else begin
    let bad = ref None in
    List.iteri
      (fun i c ->
        if !bad = None then begin
          let satisfied =
            Array.exists
              (fun l ->
                let v = Cnf.var_of l in
                v < Array.length m
                && if Cnf.is_pos l then m.(v) else not m.(v))
              c
          in
          if not satisfied then bad := Some (i, c)
        end)
      (List.rev p.clauses);
    match !bad with
    | None -> Ok ()
    | Some (i, c) ->
        Error
          (Format.asprintf "clause %d (%a) is falsified by the model" i
             pp_clause c)
  end

(* ---- DRUP refutation checking (reverse unit propagation) ----

   Unit propagation here uses per-clause watch *indices* with
   watcher lists keyed by the watched literal itself — a layout chosen
   to be deliberately different from the solver's position-0/1 watching
   under negated keys, while staying fast enough to re-check the proofs
   of full paper runs. *)

type db_clause = {
  lits : Cnf.lit array;
  mutable active : bool;
  mutable w0 : int; (* watched indices into [lits]; equal for units *)
  mutable w1 : int;
}

exception Conflict

let clause_key lits = List.sort_uniq compare (Array.to_list lits)

(* Drop duplicate literal occurrences (Tseitin translation can emit
   them). A clause is a set of literals, and the two-watch completeness
   argument below needs the two watches on *distinct* literals: with
   both watches on copies of the same literal, every other literal can
   be falsified without a single watcher visit, and a unit clause goes
   unnoticed. *)
let dedup_lits lits =
  let n = Array.length lits in
  if n <= 1 then lits
  else begin
    let out = ref [] in
    let kept = ref 0 in
    for j = 0 to n - 1 do
      let l = lits.(j) in
      if not (List.mem l !out) then begin
        out := l :: !out;
        incr kept
      end
    done;
    if !kept = n then lits else Array.of_list (List.rev !out)
  end

let check_refutation (p : Cnf.problem) (proof : step list) =
  let originals = List.rev p.clauses in
  let max_var =
    let over_clause acc c =
      Array.fold_left (fun a l -> max a (Cnf.var_of l)) acc c
    in
    let mv = List.fold_left over_clause p.num_vars originals in
    List.fold_left
      (fun acc s -> over_clause acc (match s with Add c | Delete c -> c))
      mv proof
  in
  let n_adds =
    List.fold_left (fun n s -> match s with Add _ -> n + 1 | _ -> n) 0 proof
  in
  let cap = max 1 (List.length originals + n_adds) in
  let dummy = { lits = [||]; active = false; w0 = 0; w1 = 0 } in
  let db = Array.make cap dummy in
  let n_db = ref 0 in
  (* watchers.(l) holds ids of clauses currently watching literal [l] *)
  let watchers = Array.make ((2 * (max_var + 1)) + 2) [] in
  (* sorted-literal key -> ids, for deletion lookups *)
  let index : (Cnf.lit list, int list) Hashtbl.t = Hashtbl.create 1024 in
  let assign = Array.make (max_var + 1) Cnf.Unknown in
  let root_conflict = ref false in
  let dirty = ref false in
  let value_of l =
    let v = assign.(Cnf.var_of l) in
    if Cnf.is_pos l then v else Cnf.value_negate v
  in
  let watch l id = watchers.(l) <- id :: watchers.(l) in
  let add_db lits =
    let key = clause_key lits in
    let lits = dedup_lits lits in
    let id = !n_db in
    let n = Array.length lits in
    (* pick watches on non-false literals where possible, so the watch
       invariant holds under the current persistent assignment *)
    let a = ref (-1) and b = ref (-1) in
    for j = 0 to n - 1 do
      if !b < 0 && value_of lits.(j) <> Cnf.False then
        if !a < 0 then a := j else b := j
    done;
    let w0 = if !a >= 0 then !a else 0 in
    let w1 = if !b >= 0 then !b else if !a >= 0 then !a else min 1 (n - 1) in
    let w1 = if n <= 1 then w0 else if w1 = w0 then (w0 + 1) mod n else w1 in
    db.(id) <- { lits; active = true; w0; w1 };
    incr n_db;
    if n > 0 then begin
      watch lits.(w0) id;
      if w1 <> w0 then watch lits.(w1) id
    end;
    let prev = Option.value ~default:[] (Hashtbl.find_opt index key) in
    Hashtbl.replace index key (id :: prev)
  in
  (* make [l] true; true on a fresh assignment, Conflict on a clash *)
  let set undo l =
    match value_of l with
    | Cnf.True -> false
    | Cnf.False -> raise Conflict
    | Cnf.Unknown ->
        assign.(Cnf.var_of l) <- (if Cnf.is_pos l then Cnf.True else Cnf.False);
        (match undo with Some u -> u := Cnf.var_of l :: !u | None -> ());
        true
  in
  (* saturate unit propagation from a queue of literals to make true *)
  let propagate undo initial =
    let queue = ref initial in
    while !queue <> [] do
      let l = List.hd !queue in
      queue := List.tl !queue;
      if set undo l then begin
        let falsified = Cnf.negate l in
        let pending = ref watchers.(falsified) in
        watchers.(falsified) <- [];
        let keep = ref [] in
        let conflict = ref false in
        while !pending <> [] do
          let id = List.hd !pending in
          pending := List.tl !pending;
          let c = db.(id) in
          if !conflict then keep := id :: !keep
          else if c.active then begin
            (* normalize: make w0 the watch sitting on [falsified] *)
            if c.lits.(c.w0) <> falsified then begin
              let t = c.w0 in
              c.w0 <- c.w1;
              c.w1 <- t
            end;
            let other = c.lits.(c.w1) in
            if c.w1 <> c.w0 && value_of other = Cnf.True then
              keep := id :: !keep
            else begin
              (* look for a replacement watch *)
              let n = Array.length c.lits in
              let found = ref (-1) in
              let j = ref 0 in
              while !found < 0 && !j < n do
                if
                  !j <> c.w0 && !j <> c.w1
                  && value_of c.lits.(!j) <> Cnf.False
                then found := !j;
                incr j
              done;
              if !found >= 0 then begin
                c.w0 <- !found;
                watch c.lits.(!found) id
              end
              else begin
                keep := id :: !keep;
                if c.w1 = c.w0 || value_of other = Cnf.False then
                  conflict := true
                else queue := other :: !queue
              end
            end
          end
        done;
        watchers.(falsified) <- !keep @ watchers.(falsified);
        if !conflict then raise Conflict
      end
    done
  in
  (* (re)derive the persistent root assignment from the active clauses *)
  let repropagate () =
    Array.fill assign 0 (Array.length assign) Cnf.Unknown;
    root_conflict := false;
    dirty := false;
    try
      let units = ref [] in
      for id = 0 to !n_db - 1 do
        let c = db.(id) in
        if c.active then
          match Array.length c.lits with
          | 0 -> raise Conflict
          | 1 -> units := c.lits.(0) :: !units
          | _ -> ()
      done;
      propagate None !units
    with Conflict -> root_conflict := true
  in
  (* fold a just-added clause into the persistent assignment *)
  let integrate lits =
    if not !root_conflict then
      try
        if Array.length lits = 0 then root_conflict := true
        else begin
          let satisfied = ref false in
          let unassigned = ref [] in
          Array.iter
            (fun m ->
              match value_of m with
              | Cnf.True -> satisfied := true
              | Cnf.Unknown ->
                  if not (List.mem m !unassigned) then
                    unassigned := m :: !unassigned
              | Cnf.False -> ())
            lits;
          if not !satisfied then
            match !unassigned with
            | [] -> root_conflict := true
            | [ u ] -> propagate None [ u ]
            | _ -> ()
        end
      with Conflict -> root_conflict := true
  in
  (* the RUP test: negating the clause must propagate to a conflict *)
  let rup lits =
    if !dirty then repropagate ();
    !root_conflict
    ||
    let undo = ref [] in
    let derived =
      try
        propagate (Some undo) (Array.to_list (Array.map Cnf.negate lits));
        false
      with Conflict -> true
    in
    List.iter (fun v -> assign.(v) <- Cnf.Unknown) !undo;
    derived
  in
  let delete lits =
    let key = clause_key lits in
    match Hashtbl.find_opt index key with
    | None | Some [] -> () (* unknown deletion: ignored, as in drup-trim *)
    | Some (id :: rest) ->
        let c = db.(id) in
        c.active <- false;
        Hashtbl.replace index key rest;
        (* The root closure only has to be recomputed if this clause can
           have fed it a propagation, i.e. it is antecedent-shaped under
           the current assignment: exactly one true literal and all
           others false. Any unassigned literal means the clause never
           fired as a unit, so the closure stands. *)
        if not !dirty then begin
          let trues = ref 0 and unknowns = ref 0 in
          Array.iter
            (fun l ->
              match value_of l with
              | Cnf.True -> incr trues
              | Cnf.Unknown -> incr unknowns
              | Cnf.False -> ())
            c.lits;
          if !root_conflict || (!trues <= 1 && !unknowns = 0) then
            dirty := true
        end
  in
  List.iter add_db originals;
  repropagate ();
  let verdict = ref None in
  let step_no = ref 0 in
  List.iter
    (fun s ->
      incr step_no;
      if !verdict = None then
        match s with
        | Delete lits -> delete lits
        | Add lits ->
            if rup lits then begin
              add_db (Array.copy lits);
              integrate lits;
              if Array.length lits = 0 then verdict := Some (Ok ())
            end
            else
              verdict :=
                Some
                  (Error
                     (Format.asprintf
                        "step %d: clause (%a) has no reverse-unit-propagation \
                         derivation"
                        !step_no pp_clause lits))
    )
    proof;
  match !verdict with
  | Some r -> r
  | None -> Error "proof ends without deriving the empty clause"

(* ---- certification entry point ---- *)

type certificate = Model of Cnf.model | Refutation of step list

type report = {
  kind : [ `Model | `Refutation ];
  additions : int;
  deletions : int;
  check_time : float;
}

let certify p cert =
  let t0 = Sys.time () in
  match cert with
  | Model m -> (
      match check_model p m with
      | Ok () ->
          Ok
            {
              kind = `Model;
              additions = 0;
              deletions = 0;
              check_time = Sys.time () -. t0;
            }
      | Error e -> Error e)
  | Refutation steps -> (
      let additions, deletions =
        List.fold_left
          (fun (a, d) -> function Add _ -> (a + 1, d) | Delete _ -> (a, d + 1))
          (0, 0) steps
      in
      match check_refutation p steps with
      | Ok () ->
          Ok
            { kind = `Refutation; additions; deletions; check_time = Sys.time () -. t0 }
      | Error e -> Error e)

let pp_report ppf r =
  match r.kind with
  | `Model ->
      Format.fprintf ppf "model satisfies every original clause (checked in %.3fs)"
        r.check_time
  | `Refutation ->
      Format.fprintf ppf
        "DRUP refutation: %d additions, %d deletions, checked in %.3fs"
        r.additions r.deletions r.check_time
