(** Conflict-driven clause-learning (CDCL) SAT solver.

    A from-scratch MiniSat-style solver: two-literal watching, first-UIP
    conflict analysis with clause minimization, VSIDS decision heuristic
    with phase saving, Luby restarts and activity-based learnt-clause
    database reduction. This is the engine under the relational-logic
    translation ({!Relalg}) and hence under every Alloy-lite [check]/[run]
    command, mirroring the Alloy Analyzer's use of MiniSat via Kodkod. *)

type t

(** Outcome of a [solve] call. The model array is indexed by variable
    (entry 0 unused) and is always verified against the clause database
    before being returned. *)
type result = Sat of Cnf.model | Unsat

(** Outcome of a budgeted {!solve_bounded} call: either the instance was
    decided, or the {!Netsim.Budget} expired first. [conflicts] and
    [propagations] count work done by this call (not the solver's
    lifetime totals). *)
type bounded_result =
  | Decided of result
  | Unknown of { reason : string; conflicts : int; propagations : int }

(** Solver counters, for the benchmark harness and tests. *)
type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learnt_literals : int;
  max_vars : int;
  clauses_added : int;
}

(** Search-strategy knobs, the diversification axes of the solver
    portfolio ({!Portfolio}). The default reproduces the solver's
    historical behaviour exactly. *)
type config = {
  restart_base : float;  (** Luby restart unit interval (default 100) *)
  invert_polarity : bool;
      (** start saved phases at [true] instead of [false] *)
  seed : int;
      (** when nonzero: seeded tiny VSIDS activity offsets and scrambled
          initial phases — different seeds explore different subtrees *)
}

val default_config : config

val diversified : int -> config
(** [diversified k] is the [k]-th member of the portfolio family
    ([diversified 0 = default_config]): restart interval, polarity and
    seed vary together so that members rarely duplicate work. *)

val create : unit -> t

val new_var : t -> Cnf.var
(** Allocates the next variable. *)

val ensure_vars : t -> int -> unit
(** [ensure_vars s n] makes variables [1..n] available. *)

val num_vars : t -> int

val add_clause : t -> Cnf.lit list -> unit
(** Adds a clause over existing variables (unknown variables are allocated
    automatically). Tautologies are dropped; duplicate literals merged.
    Adding the empty clause marks the instance unsatisfiable. *)

val solve : ?assumptions:Cnf.lit list -> ?certify:bool -> t -> result
(** Decides the instance. With [assumptions], decides satisfiability under
    the given temporary unit hypotheses; the solver can be reused with
    different assumptions afterwards: every solve starts from a
    root-level backtrack, assumptions are pushed as pseudo-decisions
    below all search decisions, and learnt clauses — which only ever
    mention assumptions as negated literals, so they are consequences
    of the clause set alone — stay valid for the next call whatever its
    assumptions are. This is the warm-session contract the incremental
    policy-matrix sweep is built on.

    With [~certify:true] (default false) the verdict is independently
    certified before being returned: a [Sat] model is re-checked against
    every original clause by {!Proof.check_model}, and an [Unsat] answer
    must come with a DRUP trail accepted by {!Proof.check_refutation}.
    Requires proof logging ({!enable_proof} or [of_problem ~proof:true])
    and no assumptions; raises [Invalid_argument] otherwise, and
    {!Proof.Certification_failed} if a certificate is rejected (i.e. a
    solver bug was caught). *)

val solve_bounded :
  ?assumptions:Cnf.lit list ->
  ?config:config ->
  ?stop:(unit -> bool) ->
  budget:Netsim.Budget.t ->
  t ->
  bounded_result
(** Like {!solve}, but gives up with [Unknown] once [budget] expires
    (checked against this call's conflict/propagation counts and the
    wall clock). On [Unknown] the solver backtracks to the root level
    and stays reusable — learnt clauses are kept, so a retry with a
    larger budget resumes warm. Certification is not supported on the
    bounded path.

    [config] selects a diversified search strategy (default: the
    canonical one). [stop] is the cooperative-cancellation hook: it is
    polled together with the budget at {e every} conflict/decision
    boundary — not merely at restarts — so when it flips to [true]
    (e.g. a portfolio rival won) the call returns
    [Unknown {reason = "cancelled"; _}] within one conflict. *)

val failed_assumptions : t -> Cnf.lit list
(** After an [Unsat] answer from {!solve} or {!solve_bounded} under
    assumptions: the failed-assumption core — a subset of the
    assumptions that is already unsatisfiable together with the clause
    set, computed by final conflict analysis (MiniSat's
    [analyzeFinal]) over the closing conflict. [[]] after an [Unsat]
    with no assumptions involved (the clause set itself is
    unsatisfiable), and [[]] after any [Sat] or [Unknown] answer. The
    core is reset by every solve call. *)

val solve_assuming_certified : assumptions:Cnf.lit list -> t -> result
(** Certified solve under assumptions, for warm session solvers. The
    certificate covers the {e assumed problem} — {!original_problem}
    extended with one unit clause per assumption: a [Sat] model is
    checked against all of it, and an [Unsat] answer is certified by
    the session's DRUP trail closed with one empty-clause addition
    (sound because learnt clauses never use assumptions as premises,
    and the final conflict is a unit-propagation consequence of the
    assumption units). The solver itself is {e not} mutated beyond a
    normal warm solve — in particular the assumptions are never added
    as clauses, so the session stays reusable under different
    assumptions. Requires proof logging; raises [Invalid_argument]
    otherwise and {!Proof.Certification_failed} if the certificate is
    rejected. *)

val enable_proof : t -> unit
(** Turns on DRUP proof logging and original-clause capture. Must be
    called before any clause is added (raises [Invalid_argument]
    otherwise), so that the logged trail is checkable against the full
    original CNF. *)

val proof_enabled : t -> bool

val proof_steps : t -> Proof.step list
(** The DRUP trail logged so far, in chronological order ([[]] when
    logging is off). After an assumption-free [Unsat] answer the trail
    ends with the empty clause and is a complete refutation of
    {!original_problem}. *)

val original_problem : t -> Cnf.problem
(** The clauses as passed to {!add_clause}, before any root-level
    simplification — the CNF that certificates are checked against.
    Raises [Invalid_argument] when proof logging is off. *)

val last_certification : t -> Proof.report option
(** Report of the most recent successful [~certify:true] solve. *)

val of_problem : ?proof:bool -> Cnf.problem -> t
(** Loads a {!Cnf.problem} into a fresh solver. [~proof:true] (default
    false) enables proof logging before loading. *)

val solve_problem : ?certify:bool -> Cnf.problem -> result
(** One-shot convenience wrapper; [~certify] as in {!solve}. *)

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
