module F = Sat.Formula

type translation = {
  cnf : F.cnf_result;
  num_primary : int;
  circuit_size : int;
  bounds : Bounds.t;
  alloc : (string * (Tuple.t * Sat.Cnf.var option) list) list;
}

(* Environment: relation matrices plus quantified-variable bindings.
   The memo tables make compilation of a repeated subterm (under the
   same variable bindings) return the SAME circuit object: besides the
   speedup, the physical sharing is what keeps the Tseitin translation
   and its structural cache linear in the circuit DAG. *)
type env = {
  universe : Universe.t;
  rel_matrices : (string, Matrix.t) Hashtbl.t;
  vars : (string * int) list; (* quantifier variable -> atom index *)
  expr_memo : (Ast.expr * (string * int) list, Matrix.t) Hashtbl.t;
  int_memo : (Ast.intexpr * (string * int) list, Bitvec.t) Hashtbl.t;
  formula_memo : (Ast.formula * (string * int) list, F.t) Hashtbl.t;
}

let lookup_var env x =
  match List.assoc_opt x env.vars with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Translate: unbound variable %s" x)

let lookup_rel env n =
  match Hashtbl.find_opt env.rel_matrices n with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Translate: unbound relation %s" n)

let rec compile_expr env (e : Ast.expr) : Matrix.t =
  match Hashtbl.find_opt env.expr_memo (e, env.vars) with
  | Some m -> m
  | None ->
      let m = compile_expr_raw env e in
      Hashtbl.replace env.expr_memo (e, env.vars) m;
      m

and compile_expr_raw env (e : Ast.expr) : Matrix.t =
  match e with
  | Ast.Rel n -> lookup_rel env n
  | Ast.Var x -> Matrix.singleton [ lookup_var env x ]
  | Ast.Univ -> Matrix.full env.universe 1
  | Ast.None_ -> Matrix.empty 1
  | Ast.Iden -> Matrix.iden env.universe
  | Ast.Union (a, b) -> Matrix.union (compile_expr env a) (compile_expr env b)
  | Ast.Inter (a, b) -> Matrix.inter (compile_expr env a) (compile_expr env b)
  | Ast.Diff (a, b) -> Matrix.diff (compile_expr env a) (compile_expr env b)
  | Ast.Join (a, b) -> Matrix.join (compile_expr env a) (compile_expr env b)
  | Ast.Product (a, b) -> Matrix.product (compile_expr env a) (compile_expr env b)
  | Ast.Transpose a -> Matrix.transpose (compile_expr env a)
  | Ast.Closure a -> Matrix.closure env.universe (compile_expr env a)
  | Ast.RClosure a -> Matrix.reflexive_closure env.universe (compile_expr env a)
  | Ast.Override (a, b) -> Matrix.override (compile_expr env a) (compile_expr env b)
  | Ast.DomRestrict (s, r) ->
      Matrix.restrict_domain (compile_expr env s) (compile_expr env r)
  | Ast.RanRestrict (r, s) ->
      Matrix.restrict_range (compile_expr env r) (compile_expr env s)
  | Ast.IfExpr (c, t, e) ->
      let fc = compile_formula env c in
      let mt = compile_expr env t and me = compile_expr env e in
      if Matrix.arity mt <> Matrix.arity me then
        invalid_arg "Translate: if-expression branches of different arity";
      Matrix.union
        (Matrix.map (F.and2 fc) mt)
        (Matrix.map (F.and2 (F.not_ fc)) me)
  | Ast.Comprehension (decls, f) -> compile_comprehension env decls f

and compile_comprehension env decls f =
  (* each decl ranges over a unary expression; result arity = #decls *)
  let rec go env = function
    | [] -> [ ([], compile_formula env f) ]
    | (x, dom) :: rest ->
        let dm = compile_expr env dom in
        if Matrix.arity dm <> 1 then
          invalid_arg "Translate: comprehension domain must be unary";
        List.concat_map
          (fun (t, fd) ->
            let a = match t with [ a ] -> a | _ -> assert false in
            let env = { env with vars = (x, a) :: env.vars } in
            List.map
              (fun (tail, fr) -> (a :: tail, F.and2 fd fr))
              (go env rest))
          (Matrix.entries dm)
  in
  Matrix.of_entries (List.length decls) (go env decls)

and compile_quant env decls body ~conj =
  (* conj=true: universal (implication, conjunction); false: existential *)
  let rec go env = function
    | [] -> [ compile_formula env body ]
    | (x, dom) :: rest ->
        let dm = compile_expr env dom in
        if Matrix.arity dm <> 1 then
          invalid_arg "Translate: quantifier domain must be unary";
        List.concat_map
          (fun (t, fd) ->
            let a = match t with [ a ] -> a | _ -> assert false in
            let env = { env with vars = (x, a) :: env.vars } in
            List.map
              (fun fr -> if conj then F.implies fd fr else F.and2 fd fr)
              (go env rest))
          (Matrix.entries dm)
  in
  let parts = go env decls in
  if conj then F.and_ parts else F.or_ parts

and compile_formula env (f : Ast.formula) : F.t =
  match Hashtbl.find_opt env.formula_memo (f, env.vars) with
  | Some c -> c
  | None ->
      let c = compile_formula_raw env f in
      Hashtbl.replace env.formula_memo (f, env.vars) c;
      c

and compile_formula_raw env (f : Ast.formula) : F.t =
  match f with
  | Ast.True_ -> F.tt
  | Ast.False_ -> F.ff
  | Ast.Subset (a, b) -> Matrix.subset (compile_expr env a) (compile_expr env b)
  | Ast.Eq (a, b) -> Matrix.equal (compile_expr env a) (compile_expr env b)
  | Ast.Some_ e -> Matrix.some (compile_expr env e)
  | Ast.No e -> Matrix.no (compile_expr env e)
  | Ast.One e -> Matrix.one (compile_expr env e)
  | Ast.Lone e -> Matrix.lone (compile_expr env e)
  | Ast.Not f -> F.not_ (compile_formula env f)
  | Ast.And fs -> F.and_ (List.map (compile_formula env) fs)
  | Ast.Or fs -> F.or_ (List.map (compile_formula env) fs)
  | Ast.Implies (a, b) -> F.implies (compile_formula env a) (compile_formula env b)
  | Ast.Iff (a, b) -> F.iff (compile_formula env a) (compile_formula env b)
  | Ast.ForAll (decls, body) -> compile_quant env decls body ~conj:true
  | Ast.Exists (decls, body) -> compile_quant env decls body ~conj:false
  | Ast.IntCmp (op, a, b) ->
      let va = compile_int env a and vb = compile_int env b in
      let f =
        match op with
        | Ast.Lt -> Bitvec.lt
        | Ast.Le -> Bitvec.le
        | Ast.Gt -> Bitvec.gt
        | Ast.Ge -> Bitvec.ge
        | Ast.IEq -> Bitvec.eq
      in
      f va vb

and compile_int env (e : Ast.intexpr) : Bitvec.t =
  match Hashtbl.find_opt env.int_memo (e, env.vars) with
  | Some v -> v
  | None ->
      let v = compile_int_raw env e in
      Hashtbl.replace env.int_memo (e, env.vars) v;
      v

and compile_int_raw env (e : Ast.intexpr) : Bitvec.t =
  match e with
  | Ast.IConst n -> Bitvec.of_int n
  | Ast.Card e -> Bitvec.count (Matrix.count (compile_expr env e))
  | Ast.SumOver e ->
      let m = compile_expr env e in
      if Matrix.arity m <> 1 then
        invalid_arg "Translate: sum requires a unary expression";
      let terms =
        List.filter_map
          (fun (t, f) ->
            let a = match t with [ a ] -> a | _ -> assert false in
            match Universe.int_value env.universe a with
            | Some value ->
                Some (Bitvec.ite f (Bitvec.of_int value) (Bitvec.of_int 0))
            | None -> None)
          (Matrix.entries m)
      in
      Bitvec.sum terms
  | Ast.Add (a, b) -> Bitvec.add (compile_int env a) (compile_int env b)
  | Ast.Sub (a, b) -> Bitvec.sub (compile_int env a) (compile_int env b)
  | Ast.Neg a -> Bitvec.neg (compile_int env a)
  | Ast.Mul (a, b) -> Bitvec.mul (compile_int env a) (compile_int env b)

(* ------------------------------------------------------------------ *)
(* Symmetry breaking (Kodkod-style).

   Two atoms are interchangeable when swapping them maps every
   relation's lower bound onto itself and every upper bound onto
   itself, and neither atom carries an integer value. For every
   adjacent interchangeable pair we add a lex-leader predicate: the
   variable vector of the instance must be lexicographically no larger
   than the vector of the instance with the two atoms swapped. This
   removes most isomorphic instances from the search space — the same
   partial symmetry-breaking scheme the Alloy Analyzer inherits from
   Kodkod. *)

let swap_atoms a b t = List.map (fun x -> if x = a then b else if x = b then a else x) t

let is_bound_symmetry bounds a b =
  List.for_all
    (fun (r : Bounds.rel) ->
      let closed ts =
        List.for_all (fun t -> Tuple.mem (swap_atoms a b t) ts) ts
      in
      closed r.Bounds.lower && closed r.Bounds.upper)
    (Bounds.rels bounds)

let interchangeable_pairs bounds =
  let u = Bounds.universe bounds in
  let n = Universe.size u in
  let rec go i acc =
    if i + 1 >= n then List.rev acc
    else
      let ok =
        Universe.int_value u i = None
        && Universe.int_value u (i + 1) = None
        && is_bound_symmetry bounds i (i + 1)
      in
      go (i + 1) (if ok then (i, i + 1) :: acc else acc)
  in
  go 0 []

(* [vec <=lex swapped-vec] over every upper-bound slot, in declaration
   order; built back-to-front so shared tails keep the circuit linear. *)
let lex_leader rel_matrices bounds (a, b) =
  let components =
    List.concat_map
      (fun (r : Bounds.rel) ->
        let m = Hashtbl.find rel_matrices r.Bounds.rel_name in
        List.filter_map
          (fun t ->
            let t' = swap_atoms a b t in
            if Tuple.compare t t' = 0 then None
            else Some (Matrix.get m t, Matrix.get m t'))
          r.Bounds.upper)
      (Bounds.rels bounds)
  in
  List.fold_right
    (fun (x, y) rest -> F.and2 (F.implies x y) (F.implies (F.iff x y) rest))
    components F.tt

let symmetry_predicate bounds rel_matrices =
  F.and_
    (List.map (lex_leader rel_matrices bounds) (interchangeable_pairs bounds))

let allocate bounds =
  let next = ref 0 in
  let rel_matrices = Hashtbl.create 16 in
  let alloc =
    List.map
      (fun (r : Bounds.rel) ->
        let cells =
          List.map
            (fun t ->
              if Tuple.mem t r.lower then ((t, F.tt), (t, None))
              else begin
                incr next;
                ((t, F.var !next), (t, Some !next))
              end)
            r.upper
        in
        Hashtbl.replace rel_matrices r.rel_name
          (Matrix.of_entries r.arity (List.map fst cells));
        (r.rel_name, List.map snd cells))
      (Bounds.rels bounds)
  in
  (!next, rel_matrices, alloc)

let translate ?(symmetry = false) bounds formula =
  F.clear_sharing ();
  (* static check: every mentioned relation must be bounded *)
  List.iter
    (fun n ->
      if not (Bounds.mem bounds n) then
        invalid_arg (Printf.sprintf "Translate: relation %s has no bounds" n))
    (Ast.free_rels formula);
  let num_primary, rel_matrices, alloc = allocate bounds in
  let env =
    {
      universe = Bounds.universe bounds;
      rel_matrices;
      vars = [];
      expr_memo = Hashtbl.create 1024;
      int_memo = Hashtbl.create 1024;
      formula_memo = Hashtbl.create 1024;
    }
  in
  let circuit = compile_formula env formula in
  let circuit =
    if symmetry then F.and2 circuit (symmetry_predicate bounds rel_matrices)
    else circuit
  in
  let cnf = F.to_cnf ~num_primary circuit in
  { cnf; num_primary; circuit_size = F.size circuit; bounds; alloc }

type outcome = Sat of Instance.t | Unsat

let instance_of_model tr (model : Sat.Cnf.model) =
  let bindings =
    List.map
      (fun (name, cells) ->
        let ts =
          List.filter_map
            (fun (t, var) ->
              match var with
              | None -> Some t
              | Some v -> if model.(v) then Some t else None)
            cells
        in
        (name, ts))
      tr.alloc
  in
  Instance.create (Bounds.universe tr.bounds) bindings

let solve ?symmetry bounds formula =
  let tr = translate ?symmetry bounds formula in
  match tr.cnf.constant with
  | Some false -> Unsat
  | Some true ->
      (* trivially true: lower bounds alone satisfy it *)
      let model = Array.make (tr.num_primary + 1) false in
      Sat (instance_of_model tr model)
  | None -> (
      match Sat.Solver.solve_problem tr.cnf.problem with
      | Sat.Solver.Unsat -> Unsat
      | Sat.Solver.Sat model ->
          (* model may be longer than primary vars (Tseitin auxiliaries) *)
          Sat (instance_of_model tr model))

let check ?symmetry bounds ~assertion ~facts =
  solve ?symmetry bounds (Ast.and_ [ facts; Ast.not_ assertion ])

type bounded_outcome = Decided of outcome | Unknown of string

(* The trivial model when the circuit constant-folded to true: lower
   bounds only — except that assumed literals must still show their
   assumed polarity, or the instance read back would contradict the
   assumptions it was solved under. *)
let trivial_model tr assumptions =
  let model = Array.make (tr.num_primary + 1) false in
  List.iter
    (fun l ->
      let v = Sat.Cnf.var_of l in
      if v >= 1 && v <= tr.num_primary then model.(v) <- Sat.Cnf.is_pos l)
    assumptions;
  model

let assume tr assumptions =
  List.fold_left
    (fun p l -> Sat.Cnf.add_clause p [ l ])
    tr.cnf.F.problem assumptions

let solve_translation_bounded ?stop ?(assumptions = []) ~budget tr =
  match tr.cnf.F.constant with
  | Some false -> Decided Unsat
  | Some true -> Decided (Sat (instance_of_model tr (trivial_model tr assumptions)))
  | None -> (
      let solver = Sat.Solver.of_problem tr.cnf.F.problem in
      match Sat.Solver.solve_bounded ?stop ~assumptions ~budget solver with
      | Sat.Solver.Unknown { reason; _ } -> Unknown reason
      | Sat.Solver.Decided Sat.Solver.Unsat -> Decided Unsat
      | Sat.Solver.Decided (Sat.Solver.Sat model) ->
          Decided (Sat (instance_of_model tr model)))

let solve_bounded ?symmetry ?stop ~budget bounds formula =
  let tr = translate ?symmetry bounds formula in
  solve_translation_bounded ?stop ~budget tr

let check_bounded ?symmetry ?stop ~budget bounds ~assertion ~facts =
  solve_bounded ?symmetry ?stop ~budget bounds
    (Ast.and_ [ facts; Ast.not_ assertion ])

type certified_outcome = {
  outcome : outcome;
  certification : Sat.Proof.report option;
}

let solve_translation_certified ?(assumptions = []) tr =
  match tr.cnf.F.constant with
  | Some false -> { outcome = Unsat; certification = None }
  | Some true ->
      { outcome = Sat (instance_of_model tr (trivial_model tr assumptions));
        certification = None }
  | None ->
      let solver = Sat.Solver.of_problem ~proof:true tr.cnf.F.problem in
      (* [solve ~certify] rejects solver assumptions (a DRUP refutation
         under assumptions would not refute the clause set), so the
         assumed literals are added as real unit clauses: they then
         participate in the proof as axioms and the certificate covers
         exactly the assumed problem *)
      List.iter (fun l -> Sat.Solver.add_clause solver [ l ]) assumptions;
      let outcome =
        match Sat.Solver.solve ~certify:true solver with
        | Sat.Solver.Unsat -> Unsat
        | Sat.Solver.Sat model -> Sat (instance_of_model tr model)
      in
      { outcome; certification = Sat.Solver.last_certification solver }

let solve_certified ?symmetry bounds formula =
  let tr = translate ?symmetry bounds formula in
  solve_translation_certified tr

let check_certified ?symmetry bounds ~assertion ~facts =
  solve_certified ?symmetry bounds (Ast.and_ [ facts; Ast.not_ assertion ])

(* Incremental solving session: one warm solver threaded through many
   assumption-parameterized solves over the same translation. Unlike
   [solve_translation_bounded], which builds a cold solver per call,
   the session keeps learnt clauses and VSIDS state across cells — the
   cells of the policy matrix differ only in selector assumptions, so
   most learnt clauses transfer. Unlike [solve_translation_certified],
   the certified path never [add_clause]s assumption units into the
   solver (that would poison it for every later cell); it relies on
   [Sat.Solver.solve_assuming_certified], which certifies against the
   assumed problem without mutating the clause set. *)
type session = {
  session_translation : translation;
  session_solver : Sat.Solver.t option;
      (* [None] when the circuit constant-folded: nothing to solve *)
  session_certify : bool;
}

let session ?(certify = false) tr =
  let solver =
    match tr.cnf.F.constant with
    | Some _ -> None
    | None -> Some (Sat.Solver.of_problem ~proof:certify tr.cnf.F.problem)
  in
  { session_translation = tr; session_solver = solver; session_certify = certify }

let session_translation sn = sn.session_translation

let solve_cell ?stop ~budget sn assumptions =
  let tr = sn.session_translation in
  match (tr.cnf.F.constant, sn.session_solver) with
  | Some false, _ -> Decided Unsat
  | Some true, _ ->
      Decided (Sat (instance_of_model tr (trivial_model tr assumptions)))
  | None, None -> assert false
  | None, Some solver -> (
      match Sat.Solver.solve_bounded ?stop ~assumptions ~budget solver with
      | Sat.Solver.Unknown { reason; _ } -> Unknown reason
      | Sat.Solver.Decided Sat.Solver.Unsat -> Decided Unsat
      | Sat.Solver.Decided (Sat.Solver.Sat model) ->
          Decided (Sat (instance_of_model tr model)))

let solve_cell_certified sn assumptions =
  if not sn.session_certify then
    invalid_arg "Translate.solve_cell_certified: session not opened with ~certify:true";
  let tr = sn.session_translation in
  match (tr.cnf.F.constant, sn.session_solver) with
  | Some false, _ -> { outcome = Unsat; certification = None }
  | Some true, _ ->
      { outcome = Sat (instance_of_model tr (trivial_model tr assumptions));
        certification = None }
  | None, None -> assert false
  | None, Some solver ->
      let outcome =
        match Sat.Solver.solve_assuming_certified ~assumptions solver with
        | Sat.Solver.Unsat -> Unsat
        | Sat.Solver.Sat model -> Sat (instance_of_model tr model)
      in
      { outcome; certification = Sat.Solver.last_certification solver }

let session_stats sn = Option.map Sat.Solver.stats sn.session_solver

let enumerate ?symmetry ?(limit = 100) bounds formula =
  if limit <= 0 then []
  else
    let tr = translate ?symmetry bounds formula in
    match tr.cnf.F.constant with
    | Some false -> []
    | Some true | None ->
        (* a constant-true formula still has one instance per assignment
           of the primary variables: run the blocking loop over an
           unconstrained solver in that case *)
        let solver =
          match tr.cnf.F.constant with
          | Some true ->
              let s = Sat.Solver.create () in
              Sat.Solver.ensure_vars s tr.num_primary;
              s
          | _ -> Sat.Solver.of_problem tr.cnf.F.problem
        in
        let rec loop acc n =
          if n = 0 then List.rev acc
          else
            match Sat.Solver.solve solver with
            | Sat.Solver.Unsat -> List.rev acc
            | Sat.Solver.Sat model ->
                let inst = instance_of_model tr model in
                (* block this assignment of the primary (relational)
                   variables so the next solve yields a different
                   instance *)
                let blocking =
                  List.init tr.num_primary (fun i ->
                      let v = i + 1 in
                      if model.(v) then Sat.Cnf.neg v else Sat.Cnf.pos v)
                in
                Sat.Solver.add_clause solver blocking;
                loop (inst :: acc) (n - 1)
        in
        loop [] limit

(* The single primary variable of a one-free-tuple relation — the
   handle for selector relations whose truth value is fixed per solve
   via [assumptions]. *)
let selector_var tr rel =
  match List.assoc_opt rel tr.alloc with
  | Some cells -> (
      match List.filter_map (fun (_, v) -> v) cells with
      | [ v ] -> Some v
      | _ -> None)
  | None -> None

type stats = { vars : int; clauses : int; primary : int; circuit : int }

let translation_stats tr =
  {
    vars = tr.cnf.problem.num_vars;
    clauses = Sat.Cnf.num_clauses tr.cnf.problem;
    primary = tr.num_primary;
    circuit = tr.circuit_size;
  }

let pp_stats ppf s =
  Format.fprintf ppf "primary=%d vars=%d clauses=%d circuit=%d" s.primary
    s.vars s.clauses s.circuit
