(** Translation of relational formulas to SAT, and the push-button solve
    loop — the Kodkod analogue.

    Pipeline: allocate one primary SAT variable per tuple in each
    relation's [upper \ lower] bound, interpret the formula over boolean
    matrices ({!Matrix}), Tseitin-translate the resulting circuit
    ({!Sat.Formula.to_cnf}) and run the CDCL solver. A satisfying model is
    read back into an {!Instance.t}. *)

type translation = {
  cnf : Sat.Formula.cnf_result;
  num_primary : int;  (** primary (relational) variables *)
  circuit_size : int;  (** connective count of the boolean circuit *)
  bounds : Bounds.t;
  alloc : (string * (Tuple.t * Sat.Cnf.var option) list) list;
      (** per relation: upper-bound tuple → its primary variable, or
          [None] when the tuple is in the lower bound (fixed true) *)
}

val translate : ?symmetry:bool -> Bounds.t -> Ast.formula -> translation
(** Compiles the formula. Raises [Invalid_argument] on arity errors,
    unbound relations, or unbound quantifier variables — the static
    errors Alloy reports at analysis start.

    [symmetry] (default false) conjoins Kodkod-style partial
    symmetry-breaking predicates: for every adjacent pair of atoms whose
    swap provably preserves all bounds (and that carry no integer
    value), a lex-leader constraint prunes isomorphic instances. Sound
    for both instance finding and refutation; counterexamples are then
    reported in canonical form. *)

type outcome = Sat of Instance.t | Unsat

val solve : ?symmetry:bool -> Bounds.t -> Ast.formula -> outcome
(** [solve b f] finds an instance within bounds satisfying [f]. *)

val check : ?symmetry:bool -> Bounds.t -> assertion:Ast.formula -> facts:Ast.formula -> outcome
(** [check b ~assertion ~facts] looks for a counterexample: an instance
    satisfying [facts && !assertion]. [Sat ce] means the assertion does
    not hold; [Unsat] means it holds within the bounds. *)

(** A {!outcome} that may also be [Unknown reason] when a
    {!Netsim.Budget} expired before the SAT solver decided. *)
type bounded_outcome = Decided of outcome | Unknown of string

val solve_bounded :
  ?symmetry:bool -> ?stop:(unit -> bool) -> budget:Netsim.Budget.t ->
  Bounds.t -> Ast.formula -> bounded_outcome
(** Like {!solve}, under a budget. Formulas that constant-fold during
    translation are decided without consulting the solver, so they never
    return [Unknown]. [stop] is the cooperative-cancellation hook of the
    parallel drivers, forwarded to {!Sat.Solver.solve_bounded}: when it
    flips to [true] the answer is [Unknown "cancelled"] within one
    conflict. *)

val check_bounded :
  ?symmetry:bool -> ?stop:(unit -> bool) -> budget:Netsim.Budget.t ->
  Bounds.t -> assertion:Ast.formula -> facts:Ast.formula -> bounded_outcome
(** Like {!check}, under a budget and the same [stop] hook. *)

(** An outcome paired with its certification evidence: the DRUP/model
    report from {!Sat.Proof}, or [None] when the formula constant-folded
    and no SAT call was made (the verdict is then trivially right). *)
type certified_outcome = {
  outcome : outcome;
  certification : Sat.Proof.report option;
}

val solve_certified : ?symmetry:bool -> Bounds.t -> Ast.formula -> certified_outcome
(** Like {!solve}, but every verdict is independently certified: a [Sat]
    model is re-checked against all CNF clauses and an [Unsat] answer
    must produce a DRUP proof accepted by {!Sat.Proof.check_refutation}.
    Raises {!Sat.Proof.Certification_failed} if the engine's certificate
    is rejected. *)

val check_certified :
  ?symmetry:bool -> Bounds.t -> assertion:Ast.formula -> facts:Ast.formula -> certified_outcome
(** Certified counterexample search: an [Unsat] ("assertion holds")
    verdict comes with a machine-checked refutation — the direction the
    paper's Result 1 rests on. *)

val solve_translation_bounded :
  ?stop:(unit -> bool) -> ?assumptions:Sat.Cnf.lit list ->
  budget:Netsim.Budget.t -> translation -> bounded_outcome
(** Budgeted solve of an already-built {!translation} — the shared-
    translation hot path: translate once, then decide many nearby
    problems by fixing selector variables through [assumptions] instead
    of re-translating. The translation is immutable and may be shared
    across domains; every call uses a fresh solver. Constant-folded
    circuits are decided directly (a trivially-[Sat] instance reflects
    the assumed literal polarities). *)

val solve_translation_certified :
  ?assumptions:Sat.Cnf.lit list -> translation -> certified_outcome
(** Certified solve of an already-built {!translation}. Assumed literals
    are asserted as unit clauses (DRUP certification rejects solver-level
    assumptions), so the certificate covers exactly the assumed problem.
    Raises {!Sat.Proof.Certification_failed} like {!solve_certified}. *)

type session
(** An incremental solving session: one warm {!Sat.Solver.t} threaded
    through many assumption-parameterized solves of the same
    {!translation}. Learnt clauses and VSIDS state carry across calls,
    so deciding the six policy-matrix cells — which differ only in
    three selector assumptions — is measurably cheaper than six
    independent solves. A session is mutable solver state: it must
    never be shared across domains (open one per worker; the underlying
    translation {e can} be shared). *)

val session : ?certify:bool -> translation -> session
(** Opens a session over [tr]. [~certify:true] (default false) enables
    DRUP proof logging on the session solver so {!solve_cell_certified}
    is available; logging has a small per-clause cost. *)

val session_translation : session -> translation

val solve_cell :
  ?stop:(unit -> bool) ->
  budget:Netsim.Budget.t -> session -> Sat.Cnf.lit list -> bounded_outcome
(** Budgeted solve of one cell under the given assumptions, warm. Same
    verdict contract as {!solve_translation_bounded} — differentially
    pinned equal in the test suite — but reusing the session solver.
    On [Unknown] the solver is back at the root level and stays
    reusable; retrying the same cell with a larger budget resumes warm.
    Assumptions never leak between calls: they are pseudo-decisions,
    undone by the root-level backtrack that starts every solve. *)

val solve_cell_certified : session -> Sat.Cnf.lit list -> certified_outcome
(** Certified solve of one cell, warm. Unlike
    {!solve_translation_certified} this never asserts the assumptions
    as clauses — that would poison the session for every later cell —
    and instead certifies via {!Sat.Solver.solve_assuming_certified}:
    the certificate still covers exactly the assumed problem. Raises
    [Invalid_argument] unless the session was opened with
    [~certify:true], and {!Sat.Proof.Certification_failed} if a
    certificate is rejected. *)

val session_stats : session -> Sat.Solver.stats option
(** Counters of the session solver ([None] when the circuit
    constant-folded and no solver exists) — the observability hook for
    warm-reuse assertions: conflicts/propagations are lifetime totals,
    so per-cell work is a delta between snapshots. *)

val assume : translation -> Sat.Cnf.lit list -> Sat.Cnf.problem
(** The translation's CNF problem extended with one unit clause per
    assumed literal — non-destructive ({!Sat.Cnf.problem} is
    functional), for feeding alternative engines such as {!Sat.Dpll}. *)

val selector_var : translation -> string -> Sat.Cnf.var option
(** [selector_var tr rel] is the primary variable of relation [rel] when
    it has exactly one tuple free between its bounds — the shape of a
    policy-selector relation — and [None] otherwise. *)

val enumerate : ?symmetry:bool -> ?limit:int -> Bounds.t -> Ast.formula -> Instance.t list
(** All satisfying instances, up to [limit] (default 100): Alloy's
    "Next" button. Each found model is blocked on the primary variables
    and the (incremental) solver is re-run. With [symmetry] the stream
    is restricted to the lex-leader representative of most isomorphism
    classes. *)

val instance_of_model : translation -> Sat.Cnf.model -> Instance.t

type stats = { vars : int; clauses : int; primary : int; circuit : int }

val translation_stats : translation -> stats
(** Size of the generated SAT problem — the measurements behind the
    paper's 259K-vs-190K clause comparison (experiment E5). *)

val pp_stats : Format.formatter -> stats -> unit
