(* Blocking client for the verification service: one request, one
   newline-framed reply, per connection. [flood] is the overload probe —
   concurrent domains hammering the server and tallying how it answered
   (the CI smoke job asserts sheds are explicit and verdicts are
   pinned). *)

let connect ?(timeout_s = 10.0) addr =
  let domain =
    match addr with
    | Server.Unix_path _ -> Unix.PF_UNIX
    | Server.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Server.sockaddr_of addr);
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let send_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | 0 -> failwith "connection closed while writing"
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let recv_line fd =
  let buf = Buffer.create 128 in
  let chunk = Bytes.create 1 in
  let rec go () =
    match Unix.read fd chunk 0 1 with
    | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | _ ->
        if Bytes.get chunk 0 = '\n' then Some (Buffer.contents buf)
        else begin
          Buffer.add_char buf (Bytes.get chunk 0);
          if Buffer.length buf > 65536 then failwith "reply too long"
          else go ()
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let roundtrip ?timeout_s addr line =
  match connect ?timeout_s addr with
  | exception e ->
      Result.Error (Printf.sprintf "connect: %s" (Printexc.to_string e))
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match
            send_all fd (line ^ "\n");
            recv_line fd
          with
          | None -> Result.Error "connection closed before reply"
          | Some reply -> Wire.parse_response reply
          | exception e ->
              Result.Error (Printf.sprintf "i/o: %s" (Printexc.to_string e)))

let check ?timeout_s addr req =
  roundtrip ?timeout_s addr (Wire.render_request req)

(* Submit framing: the header line, then the raw body bytes. The write
   can hit EPIPE when the server refuses from the header alone (cap,
   quota, shed) and closes before reading our body — the refusal reply
   is already on the wire, so swallow the write error and read it. *)
let submit ?timeout_s ?id ?tenant ?cmd ?certify ?deadline_s addr spec =
  let header =
    Wire.submit ?id ?tenant ?cmd ?certify ?deadline_s
      ~spec_bytes:(String.length spec) ()
  in
  match connect ?timeout_s addr with
  | exception e ->
      Result.Error (Printf.sprintf "connect: %s" (Printexc.to_string e))
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (try send_all fd (Wire.render_submit_header header ^ "\n" ^ spec)
           with Unix.Unix_error _ | Failure _ -> ());
          match recv_line fd with
          | None -> Result.Error "connection closed before reply"
          | Some reply -> Wire.parse_response reply
          | exception e ->
              Result.Error (Printf.sprintf "i/o: %s" (Printexc.to_string e)))

let get_stats ?timeout_s addr =
  match roundtrip ?timeout_s addr Wire.stats_request with
  | Ok (Wire.Stats kvs) -> Ok kvs
  | Ok _ -> Result.Error "unexpected reply to stats"
  | Result.Error _ as e -> e

(* Raising a watermark is idempotent and monotonic, so re-sending a
   fence after a transport failure is always safe. The ack echoes the
   worker's watermark *after* the raise — ≥ the requested epoch. *)
let fence ?timeout_s ?(id = "") addr ~epoch =
  match roundtrip ?timeout_s addr (Wire.render_fence ~id ~epoch) with
  | Ok (Wire.Fenced { fenced_epoch; _ }) -> Ok fenced_epoch
  | Ok _ -> Result.Error "unexpected reply to fence"
  | Result.Error _ as e -> e

(* ---- retrying check ----------------------------------------------- *)

(* A check names a pure verification problem, so re-asking is always
   safe — there is nothing to double-apply. Two failure shapes are worth
   a retry: a transport failure (connection refused while the server
   restarts, or a connection that died before the reply) and an explicit
   [shed] (the queue was full at that instant; it often drains within
   milliseconds). Anything the server actually answered — a verdict, an
   error — is final. *)

type retry_report = {
  attempts : int;  (** total tries, including the first *)
  retried_shed : int;
  retried_transport : int;
  retried_quota : int;  (** quota refusals waited out (submit only) *)
  gave_up : string option;
      (** why the last failure was returned instead of retried *)
}

let failed_reply = function
  | Ok (Wire.Shed _) | Result.Error _ -> true
  | Ok _ -> false

let check_retry ?timeout_s ?(retries = 0) ?retry_budget_s
    ?(backoff = Netsim.Backoff.make ()) ?(seed = 0) addr req =
  if retries < 0 then invalid_arg "Client.check_retry: retries < 0";
  (match retry_budget_s with
  | Some b when b < 0.0 -> invalid_arg "Client.check_retry: negative budget"
  | _ -> ());
  let rng =
    Netsim.Backoff.stream ~seed
      ~key:("client/" ^ req.Wire.policy ^ "/" ^ req.Wire.id)
  in
  let started = Unix.gettimeofday () in
  let shed = ref 0 and transport = ref 0 in
  let within_budget delay =
    match retry_budget_s with
    | None -> true
    | Some b -> Unix.gettimeofday () -. started +. delay <= b
  in
  let rec go attempt =
    let reply = check ?timeout_s addr req in
    let failure =
      match reply with
      | Ok (Wire.Shed _) -> Some `Shed
      | Result.Error _ -> Some `Transport
      | Ok _ -> None
    in
    match failure with
    | None -> (reply, attempt, None)
    | Some kind ->
        if attempt > retries then (reply, attempt, Some "retries exhausted")
        else
          let delay = Netsim.Backoff.delay backoff ~rng ~attempt in
          if not (within_budget delay) then
            (reply, attempt, Some "retry budget exhausted")
          else begin
            (match kind with
            | `Shed -> incr shed
            | `Transport -> incr transport);
            Unix.sleepf delay;
            go (attempt + 1)
          end
  in
  let reply, attempts, gave_up = go 1 in
  ( reply,
    {
      attempts;
      retried_shed = !shed;
      retried_transport = !transport;
      retried_quota = 0;
      gave_up = (if failed_reply reply then gave_up else None);
    } )

(* ---- retrying submit ---------------------------------------------- *)

(* Submissions are as safe to re-ask as checks: verdicts are
   content-addressed (digest × command × certify), so a duplicate
   submission can only hit the cache, never double-apply. Only two
   failure shapes are retried: transport failures, and [quota] refusals
   — which carry an explicit [retry=…] hint that we honor as a floor
   under the jittered backoff. A [shed] is NOT retried here: the quota
   layer in front of the queue means a shed on submit signals global
   overload where backing off a single tenant does not help; callers
   who want that behavior can loop themselves. Anything the server
   answered with substance — a spec verdict, a typed diagnostic — is
   final. *)

let submit_retry ?timeout_s ?id ?tenant ?cmd ?certify ?deadline_s
    ?(retries = 0) ?retry_budget_s ?(backoff = Netsim.Backoff.make ())
    ?(seed = 0) addr spec =
  if retries < 0 then invalid_arg "Client.submit_retry: retries < 0";
  (match retry_budget_s with
  | Some b when b < 0.0 -> invalid_arg "Client.submit_retry: negative budget"
  | _ -> ());
  let rng =
    Netsim.Backoff.stream ~seed
      ~key:("client/submit/" ^ Option.value id ~default:"")
  in
  let started = Unix.gettimeofday () in
  let quota = ref 0 and transport = ref 0 in
  let within_budget delay =
    match retry_budget_s with
    | None -> true
    | Some b -> Unix.gettimeofday () -. started +. delay <= b
  in
  let rec go attempt =
    let reply = submit ?timeout_s ?id ?tenant ?cmd ?certify ?deadline_s addr spec in
    let failure =
      match reply with
      | Ok (Wire.Quota { retry_after_s; _ }) -> Some (`Quota retry_after_s)
      | Result.Error _ -> Some `Transport
      | Ok _ -> None
    in
    match failure with
    | None -> (reply, attempt, None)
    | Some kind ->
        if attempt > retries then (reply, attempt, Some "retries exhausted")
        else
          let delay =
            let d = Netsim.Backoff.delay backoff ~rng ~attempt in
            match kind with
            | `Quota hint -> Float.max d hint
            | `Transport -> d
          in
          if not (within_budget delay) then
            (reply, attempt, Some "retry budget exhausted")
          else begin
            (match kind with
            | `Quota _ -> incr quota
            | `Transport -> incr transport);
            Unix.sleepf delay;
            go (attempt + 1)
          end
  in
  let reply, attempts, gave_up = go 1 in
  let failed = match reply with
    | Ok (Wire.Quota _) | Result.Error _ -> true
    | Ok _ -> false
  in
  ( reply,
    {
      attempts;
      retried_shed = 0;
      retried_transport = !transport;
      retried_quota = !quota;
      gave_up = (if failed then gave_up else None);
    } )

(* ---- the overload probe ------------------------------------------- *)

type flood_report = {
  sent : int;
  verdicts : int;
  flood_shed : int;
  flood_errors : int;  (** error replies and transport failures *)
  undecided : int;  (** verdict replies whose SAT column is [Undecided] *)
}

let flood ?timeout_s ?(concurrency = 4) ~total addr reqs =
  if concurrency < 1 then invalid_arg "Client.flood: concurrency < 1";
  if Array.length reqs = 0 then invalid_arg "Client.flood: no requests";
  let next = Atomic.make 0 in
  let tally () =
    let verdicts = ref 0
    and shed = ref 0
    and errors = ref 0
    and undecided = ref 0
    and mine = ref 0 in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < total then begin
        incr mine;
        let req = reqs.(i mod Array.length reqs) in
        let req = { req with Wire.id = Printf.sprintf "f%d" i } in
        (match check ?timeout_s addr req with
        | Ok (Wire.Verdict v) ->
            incr verdicts;
            (match v.Wire.sat with
            | Core.Experiments.Undecided _ -> incr undecided
            | _ -> ())
        | Ok (Wire.Shed _) -> incr shed
        | Ok (Wire.Spec _ | Wire.Quota _ | Wire.Bad_spec _)
        | Ok (Wire.Error _)
        | Ok (Wire.Stats _ | Wire.Fenced _ | Wire.Repl_ack _ | Wire.Repl_frame _)
        | Result.Error _ ->
            incr errors);
        loop ()
      end
    in
    loop ();
    (!mine, !verdicts, !shed, !errors, !undecided)
  in
  let domains = List.init concurrency (fun _ -> Domain.spawn tally) in
  let parts = List.map Domain.join domains in
  List.fold_left
    (fun acc (m, v, s, e, u) ->
      {
        sent = acc.sent + m;
        verdicts = acc.verdicts + v;
        flood_shed = acc.flood_shed + s;
        flood_errors = acc.flood_errors + e;
        undecided = acc.undecided + u;
      })
    { sent = 0; verdicts = 0; flood_shed = 0; flood_errors = 0; undecided = 0 }
    parts

let pp_flood ppf r =
  Format.fprintf ppf
    "sent=%d verdicts=%d shed=%d errors=%d undecided=%d" r.sent r.verdicts
    r.flood_shed r.flood_errors r.undecided

(* ---- the hostile-tenant probe -------------------------------------- *)

(* Floods the submit verb, optionally mutating the base spec per
   request (the Alloylite.Fuzz operators — the wire-level continuation
   of the parser fuzz suite). The robustness contract being probed:
   every reply is a verdict, a typed diagnostic, a quota refusal or a
   shed; [spec_transport] (connection died, no reply) stays 0. *)

type spec_flood_report = {
  spec_sent : int;
  spec_verdicts : int;  (** [spec] replies (cached or computed) *)
  spec_hits : int;  (** the subset served from the verdict cache *)
  spec_typed : int;  (** [Bad_spec] replies with a span *)
  spec_quota : int;
  spec_shed : int;
  spec_transport : int;  (** no structured reply — must stay 0 *)
}

let spec_flood ?timeout_s ?(concurrency = 2) ?tenant ?cmd ?certify ?mutate_seed
    ~total addr spec =
  if concurrency < 1 then invalid_arg "Client.spec_flood: concurrency < 1";
  let next = Atomic.make 0 in
  let tally () =
    let verdicts = ref 0
    and hits = ref 0
    and typed = ref 0
    and quota = ref 0
    and shed = ref 0
    and transport = ref 0
    and mine = ref 0 in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < total then begin
        incr mine;
        let body =
          match mutate_seed with
          | None -> spec
          | Some seed ->
              (* deterministic per request: seed + index, 1–3 steps *)
              let rng = Netsim.Rng.create (seed + i) in
              let steps = 1 + Netsim.Rng.int rng 3 in
              let rec apply k s =
                if k = 0 then s else apply (k - 1) (Alloylite.Fuzz.mutate rng s)
              in
              apply steps spec
        in
        let id = Printf.sprintf "sf%d" i in
        (match submit ?timeout_s ~id ?tenant ?cmd ?certify addr body with
        | Ok (Wire.Spec s) ->
            incr verdicts;
            if s.Wire.spec_cached then incr hits
        | Ok (Wire.Bad_spec _) -> incr typed
        | Ok (Wire.Quota _) -> incr quota
        | Ok (Wire.Shed _) -> incr shed
        | Ok
            ( Wire.Verdict _ | Wire.Error _ | Wire.Stats _ | Wire.Fenced _
            | Wire.Repl_ack _ | Wire.Repl_frame _ )
        | Result.Error _ ->
            incr transport);
        loop ()
      end
    in
    loop ();
    (!mine, !verdicts, !hits, !typed, !quota, !shed, !transport)
  in
  let domains = List.init concurrency (fun _ -> Domain.spawn tally) in
  let parts = List.map Domain.join domains in
  List.fold_left
    (fun acc (m, v, h, t, q, s, tr) ->
      {
        spec_sent = acc.spec_sent + m;
        spec_verdicts = acc.spec_verdicts + v;
        spec_hits = acc.spec_hits + h;
        spec_typed = acc.spec_typed + t;
        spec_quota = acc.spec_quota + q;
        spec_shed = acc.spec_shed + s;
        spec_transport = acc.spec_transport + tr;
      })
    {
      spec_sent = 0;
      spec_verdicts = 0;
      spec_hits = 0;
      spec_typed = 0;
      spec_quota = 0;
      spec_shed = 0;
      spec_transport = 0;
    }
    parts

let pp_spec_flood ppf r =
  Format.fprintf ppf
    "sent=%d verdicts=%d cached=%d typed=%d quota=%d shed=%d transport=%d"
    r.spec_sent r.spec_verdicts r.spec_hits r.spec_typed r.spec_quota
    r.spec_shed r.spec_transport
