(* Per-backend circuit breaker. All clock reads are injected (~now), so
   the tests pin the whole state machine deterministically; the cooldown
   after each trip is drawn from the backend's own Backoff.stream, so
   breakers that trip together do not half-open together. *)

type t = {
  trip_after : int;
  backoff : Netsim.Backoff.t;
  rng : Netsim.Rng.t;
  lock : Mutex.t;
  mutable consecutive : int;  (* consecutive timeouts while closed *)
  mutable trips : int;  (* consecutive open periods: the backoff attempt *)
  mutable open_until : float;  (* 0. when closed *)
  mutable probing : bool;  (* a half-open probe is in flight *)
}

type state = Closed | Open_until of float | Half_open

let make ?(trip_after = 3) ?(backoff = Netsim.Backoff.make ~base_s:1.0 ~cap_s:60.0 ())
    ~seed ~key () =
  if trip_after < 1 then invalid_arg "Breaker.make: trip_after < 1";
  {
    trip_after;
    backoff;
    rng = Netsim.Backoff.stream ~seed ~key:("breaker/" ^ key);
    lock = Mutex.create ();
    consecutive = 0;
    trips = 0;
    open_until = 0.0;
    probing = false;
  }

let with_lock b f =
  Mutex.lock b.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock b.lock) f

let state b ~now =
  with_lock b (fun () ->
      if b.open_until = 0.0 then Closed
      else if now < b.open_until then Open_until b.open_until
      else Half_open)

let admit b ~now =
  with_lock b (fun () ->
      if b.open_until = 0.0 then true
      else if now < b.open_until then false
      else if b.probing then false (* one probe at a time *)
      else begin
        b.probing <- true;
        true
      end)

let success b =
  with_lock b (fun () ->
      b.consecutive <- 0;
      b.trips <- 0;
      b.open_until <- 0.0;
      b.probing <- false)

(* a cancelled attempt (drain, request deadline) says nothing about the
   backend: release the half-open probe slot without transitioning, or
   the breaker would stay wedged refusing every future probe *)
let cancel b = with_lock b (fun () -> b.probing <- false)

let trip_locked b ~now =
  b.trips <- b.trips + 1;
  b.open_until <-
    now +. Netsim.Backoff.delay b.backoff ~rng:b.rng ~attempt:b.trips;
  b.consecutive <- 0;
  b.probing <- false

let timeout b ~now =
  with_lock b (fun () ->
      if b.open_until <> 0.0 then
        (* a half-open probe timed out: straight back to Open, with the
           next (longer) cooldown from the stream *)
        trip_locked b ~now
      else begin
        b.consecutive <- b.consecutive + 1;
        if b.consecutive >= b.trip_after then trip_locked b ~now
      end)

let pp_state ppf = function
  | Closed -> Format.pp_print_string ppf "closed"
  | Open_until t -> Format.fprintf ppf "open(until %.3f)" t
  | Half_open -> Format.pp_print_string ppf "half-open"
