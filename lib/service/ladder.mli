(** The graceful-degradation ladder: CDCL → DPLL → explicit checker →
    [UNKNOWN].

    Each rung is guarded by its own {!Breaker}: a backend that keeps
    timing out is skipped (its breaker is open) until a backoff-drawn
    cooldown has passed, so an overloaded server stops burning its
    per-request deadline on a rung that cannot answer in time. A rung
    that answers [Undecided] within its slice of the deadline counts as
    a breaker timeout and the request falls to the next rung; only when
    every rung is refused or undecided does the request resolve to
    [Undecided "degraded: …"] — the service's honest [UNKNOWN], never a
    crash or a hang. *)

type rung = Cdcl | Dpll | Explicit

val rung_name : rung -> string
(** ["cdcl"], ["dpll"], ["explicit"]. *)

type t
(** One breaker per rung; shared by all worker domains. *)

val make :
  ?trip_after:int -> ?backoff:Netsim.Backoff.t -> ?seed:int -> unit -> t
(** Breaker parameters are per {!Breaker.make}; [seed] (default 0)
    derives each rung's decorrelated cooldown stream. *)

val breaker : t -> rung -> Breaker.t
(** Exposed for stats reporting and tests. *)

type answer = {
  verdict : Core.Experiments.sweep_verdict;
  rung : string;  (** rung that answered, or ["none"] *)
  degraded : bool;  (** at least one higher rung was skipped or failed *)
  trail : (string * string) list;
      (** per-rung disposition, top-down: ["open"], ["decided"],
          ["cancelled"], or the [Undecided] reason *)
}

val decide :
  ?now:(unit -> float) ->
  t -> (rung * (unit -> Core.Experiments.sweep_verdict)) list -> answer
(** Walks the rungs top-down. [Holds]/[Violated] records a breaker
    success and stops; [Undecided "cancelled"] (drain, or the request
    deadline observed by the [stop] hook) stops {e without} a breaker
    transition — cancellation says nothing about the backend's health;
    any other [Undecided] records a breaker timeout and falls through.
    [now] (default wall clock) is injected for deterministic tests. *)

(** What the SAT rungs solve: a per-request model compiled from scratch,
    or a cached scope-wide shared translation plus the cell's policy —
    the latter skips the build → translate pipeline entirely and solves
    the shared CNF under three selector assumptions on this worker
    domain's {e warm incremental session}
    ({!Core.Mca_model.check_consensus_incremental} over
    {!Core.Mca_model.domain_session}): service workers are long-lived,
    so learnt clauses amortize across every request hitting the same
    (scope, target). *)
type backend =
  | Fresh_model of Core.Mca_model.t
  | Shared_translation of Core.Mca_model.shared * Core.Mca_model.policy

val consensus_rungs :
  ?stop:(unit -> bool) ->
  budget_for:(rung -> Netsim.Budget.t) ->
  backend:backend ->
  exhaustive:(unit -> Core.Experiments.sweep_verdict) ->
  unit -> (rung * (unit -> Core.Experiments.sweep_verdict)) list
(** The standard three rungs for a [check consensus] cell: bounded CDCL
    (with symmetry breaking), bounded DPLL on the same CNF (an
    independent engine, no clause learning; under
    [Shared_translation] the selector bits are added as unit clauses),
    and the caller's [exhaustive] thunk — in the service this reuses the
    explicit-state verdict the reply needs anyway, so the bottom rung
    costs nothing extra. [budget_for] slices the remaining request
    deadline per rung. *)

val check_consensus :
  ?now:(unit -> float) ->
  ?stop:(unit -> bool) ->
  budget_for:(rung -> Netsim.Budget.t) ->
  backend:backend ->
  exhaustive:(unit -> Core.Experiments.sweep_verdict) ->
  t -> answer
(** [decide] over [consensus_rungs]. *)
