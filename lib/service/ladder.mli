(** The graceful-degradation ladder: CDCL → DPLL → explicit checker →
    [UNKNOWN].

    Each rung is guarded by its own {!Breaker}: a backend that keeps
    timing out is skipped (its breaker is open) until a backoff-drawn
    cooldown has passed, so an overloaded server stops burning its
    per-request deadline on a rung that cannot answer in time. A rung
    that answers [Undecided] within its slice of the deadline counts as
    a breaker timeout and the request falls to the next rung; only when
    every rung is refused or undecided does the request resolve to
    [Undecided "degraded: …"] — the service's honest [UNKNOWN], never a
    crash or a hang. *)

type rung = Cdcl | Dpll | Explicit

val rung_name : rung -> string
(** ["cdcl"], ["dpll"], ["explicit"]. *)

type t
(** One breaker per rung; shared by all worker domains. *)

val make :
  ?trip_after:int -> ?backoff:Netsim.Backoff.t -> ?seed:int -> unit -> t
(** Breaker parameters are per {!Breaker.make}; [seed] (default 0)
    derives each rung's decorrelated cooldown stream. *)

val breaker : t -> rung -> Breaker.t
(** Exposed for stats reporting and tests. *)

type answer = {
  verdict : Core.Experiments.sweep_verdict;
  rung : string;  (** rung that answered, or ["none"] *)
  degraded : bool;  (** at least one higher rung was skipped or failed *)
  trail : (string * string) list;
      (** per-rung disposition, top-down: ["open"], ["decided"],
          ["cancelled"], or the [Undecided] reason *)
}

val decide :
  ?now:(unit -> float) ->
  t -> (rung * (unit -> Core.Experiments.sweep_verdict)) list -> answer
(** Walks the rungs top-down. [Holds]/[Violated] records a breaker
    success and stops; [Undecided "cancelled"] (drain, or the request
    deadline observed by the [stop] hook) stops {e without} a breaker
    transition — cancellation says nothing about the backend's health;
    any other [Undecided] records a breaker timeout and falls through.
    [now] (default wall clock) is injected for deterministic tests. *)

val consensus_rungs :
  ?stop:(unit -> bool) ->
  budget_for:(rung -> Netsim.Budget.t) ->
  model:Core.Mca_model.t ->
  exhaustive:(unit -> Core.Experiments.sweep_verdict) ->
  unit -> (rung * (unit -> Core.Experiments.sweep_verdict)) list
(** The standard three rungs for a [check consensus] cell: bounded CDCL
    ({!Core.Mca_model.check_consensus_bounded} with symmetry breaking),
    bounded DPLL on the same CNF (an independent engine, no clause
    learning), and the caller's [exhaustive] thunk — in the service this
    reuses the explicit-state verdict the reply needs anyway, so the
    bottom rung costs nothing extra. [budget_for] slices the remaining
    request deadline per rung. *)

val check_consensus :
  ?now:(unit -> float) ->
  ?stop:(unit -> bool) ->
  budget_for:(rung -> Netsim.Budget.t) ->
  model:Core.Mca_model.t ->
  exhaustive:(unit -> Core.Experiments.sweep_verdict) ->
  t -> answer
(** [decide] over [consensus_rungs]. *)
