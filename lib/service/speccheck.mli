(** The untrusted-spec pipeline behind the service's [submit] verb:
    byte cap → parse → elaborate → command selection → universe-size
    cap → compile → budgeted solve → optional DRUP certification.

    Every stage either advances or produces a typed
    {!Alloylite.Diag.t} — a hostile spec can be rejected, but it can
    never surface a raw exception or hang a worker: solving runs under
    a {!Netsim.Budget} and the caller's cooperative [stop] hook, and
    resource-hungry scopes are refused by {!Alloylite.Compile.universe_estimate}
    before any translation work is done. *)

type caps = {
  max_bytes : int;  (** spec text size; also enforced at the framing layer *)
  max_atoms : int;  (** universe-size estimate ceiling *)
  max_tuples : int;  (** field tuple-budget ceiling *)
}

val default_caps : caps
(** 64 KiB of text, 64 atoms, 100k tuples — generous for every model
    in the paper's grid, tight enough that translation stays cheap. *)

val digest : string -> string
(** Content address of a spec text (hex), the verdict-cache key
    component and the [digest] field of the {!Wire.spec_reply}. *)

type result = {
  command : string;  (** label of the command that ran, e.g. ["check a"] *)
  verdict : Wire.spec_verdict;
  certified : bool;
  secs : float;
}

val analyze :
  ?caps:caps -> ?certify:bool -> ?cmd:string -> ?stop:(unit -> bool) ->
  deadline:float -> string -> (result, Alloylite.Diag.t) Result.t
(** [analyze ~deadline spec] runs the full pipeline on raw spec text.
    [cmd] names the check/run command to execute (default: the file's
    first); [certify] asks for a DRUP-checked verdict (skipped when
    the budgeted solve came back [Unknown]); [deadline] is an absolute
    [Unix.gettimeofday]-clock instant bounding the solve; [stop] is
    polled between solver conflicts for cooperative cancellation. *)

(* ---- journal codec ------------------------------------------------ *)

type record = {
  rec_digest : string;
  rec_req : string;
      (** the command name the client asked for ([""] = the file's
          first) — the cache-key component, distinct from the label *)
  rec_cmd : string;  (** executed command label, e.g. ["check uniqueID"] *)
  rec_certify : bool;  (** the cached verdict carries a certificate *)
  rec_verdict : Wire.spec_verdict;
  rec_secs : float;
}

val spec_record : record -> string
(** One [spec|1|…|fp=CRC] journal line, the cached-verdict format that
    coexists with the sweep's [cell|1|…] records in one journal file. *)

val spec_of_record : string -> record option
(** Parses and CRC-checks one journal line; [None] for non-[spec]
    records (e.g. the sweep's cells) and corrupt lines alike. *)
