(* Pipeline for tenant-submitted specs. Each stage either advances or
   returns a typed Alloylite.Diag — never a raw exception: parse and
   elaboration raise Diag already, compilation failures are converted
   at the command's span, and the solve runs under a Netsim.Budget so
   a hostile scope degrades to [Spec_unknown], not a hang. *)

module Diag = Alloylite.Diag
module Elaborate = Alloylite.Elaborate
module Compile = Alloylite.Compile

type caps = { max_bytes : int; max_atoms : int; max_tuples : int }

let default_caps = { max_bytes = 65536; max_atoms = 64; max_tuples = 100_000 }

let digest spec = Digest.to_hex (Digest.string spec)

type result = {
  command : string;
  verdict : Wire.spec_verdict;
  certified : bool;
  secs : float;
}

let cap_error ~span msg hint = Result.Error { Diag.stage = Cap; span; msg; hint }

let find_command commands = function
  | None -> (
      match commands with
      | c :: _ -> Ok c
      | [] ->
          Result.Error
            {
              Diag.stage = Elab;
              span = Diag.point ~line:1 ~col:1;
              msg = "spec has no check or run command";
              hint = Some "add e.g. `check a for 3` or `run {} for 3`";
            })
  | Some name -> (
      let matches = function
        | Elaborate.Check (_, n, _) -> n = name
        | Elaborate.Run (_, Some n, _, _) -> n = name
        | Elaborate.Run (_, None, _, _) -> false
      in
      match List.find_opt matches commands with
      | Some c -> Ok c
      | None ->
          Result.Error
            {
              Diag.stage = Elab;
              span = Diag.point ~line:1 ~col:1;
              msg = Printf.sprintf "no command named %s" name;
              hint =
                Some
                  (Printf.sprintf "spec defines: %s"
                     (String.concat ", "
                        (List.map Elaborate.command_label commands)));
            })

let span_of_command cmd =
  let p = Elaborate.command_pos cmd in
  Diag.point ~line:p.Alloylite.Surface.line ~col:p.Alloylite.Surface.col

(* run commands search for an instance of facts ∧ goal; expressed as a
   counterexample search against ¬goal so the one budgeted entry point
   (check_formula_bounded) serves both command kinds *)
let run_goal model name f =
  match (name, f) with
  | Some n, _ -> (
      match Alloylite.Model.find_pred model n with
      | Some p ->
          Relalg.Ast.exists
            (List.map
               (fun (x, s) -> (x, Relalg.Ast.rel s))
               p.Alloylite.Model.params)
            p.Alloylite.Model.body
      | None -> Relalg.Ast.tt)
  | None, Some f -> f
  | None, None -> Relalg.Ast.tt

let analyze ?(caps = default_caps) ?(certify = false) ?cmd ?stop ~deadline spec
    =
  let ( let* ) = Result.bind in
  let* () =
    if String.length spec > caps.max_bytes then
      cap_error
        ~span:(Diag.point ~line:1 ~col:1)
        (Printf.sprintf "spec is %d bytes, cap is %d" (String.length spec)
           caps.max_bytes)
        (Some "split the model or inline fewer paragraphs")
    else Ok ()
  in
  let* { Elaborate.model; commands } =
    match Elaborate.file (Alloylite.Parser.parse spec) with
    | elaborated -> Ok elaborated
    | exception Diag.Error d -> Result.Error d
  in
  let* command = find_command commands cmd in
  let scope =
    match command with
    | Elaborate.Check (_, _, s) | Elaborate.Run (_, _, _, s) -> s
  in
  let atoms, tuples = Compile.universe_estimate model scope in
  let* () =
    if atoms > caps.max_atoms || tuples > caps.max_tuples then
      cap_error ~span:(span_of_command command)
        (Printf.sprintf
           "scope needs %s atoms / %s field tuples, caps are %d / %d"
           (if atoms = max_int then "overflowing" else string_of_int atoms)
           (if tuples = max_int then "overflowing" else string_of_int tuples)
           caps.max_atoms caps.max_tuples)
        (Some "reduce the scope (`for N`) or the Int bitwidth")
    else Ok ()
  in
  let* compiled =
    match Compile.prepare model scope with
    | c -> Ok c
    | exception Failure msg ->
        Result.Error
          { Diag.stage = Model; span = span_of_command command; msg; hint = None }
  in
  let goal =
    match command with
    | Elaborate.Check (_, name, _) -> (
        match Alloylite.Model.find_assert model name with
        | Some f -> f
        | None -> Relalg.Ast.tt (* unreachable: elaboration resolved it *))
    | Elaborate.Run (_, name, f, _) -> Relalg.Ast.not_ (run_goal model name f)
  in
  let started = Unix.gettimeofday () in
  let budget = Netsim.Budget.until ~deadline in
  let bounded = Compile.check_formula_bounded ?stop ~budget compiled goal in
  let is_check =
    match command with Elaborate.Check _ -> true | Elaborate.Run _ -> false
  in
  let verdict =
    match (bounded, is_check) with
    | Relalg.Translate.Decided Relalg.Translate.Unsat, true -> Wire.Spec_holds
    | Relalg.Translate.Decided (Relalg.Translate.Sat _), true ->
        Wire.Spec_counterexample
    | Relalg.Translate.Decided Relalg.Translate.Unsat, false -> Wire.Spec_none
    | Relalg.Translate.Decided (Relalg.Translate.Sat _), false ->
        Wire.Spec_instance
    | Relalg.Translate.Unknown reason, _ -> Wire.Spec_unknown reason
  in
  let certified =
    match bounded with
    | Relalg.Translate.Unknown _ -> false
    | Relalg.Translate.Decided _ when not certify -> false
    | Relalg.Translate.Decided _ -> (
        (* re-solve with the proof-logging engine; the budgeted pass
           just showed the instance is decidable at this scope *)
        match Compile.check_formula_certified compiled goal with
        | { Relalg.Translate.certification = Some _; _ } -> true
        | { Relalg.Translate.certification = None; _ } -> false
        | exception Sat.Proof.Certification_failed _ -> false)
  in
  Ok
    {
      command = Elaborate.command_label command;
      verdict;
      certified;
      secs = Unix.gettimeofday () -. started;
    }

(* ---- journal codec ------------------------------------------------ *)

type record = {
  rec_digest : string;
  rec_req : string;  (** requested command name; [""] = the file's first *)
  rec_cmd : string;  (** executed command label *)
  rec_certify : bool;
  rec_verdict : Wire.spec_verdict;
  rec_secs : float;
}

let escape = Core.Experiments.escape_field
let unescape = Core.Experiments.unescape_field

let fingerprint r =
  Parallel.Journal.crc32_hex
    (String.concat "|"
       [
         escape r.rec_digest; escape r.rec_req; escape r.rec_cmd;
         string_of_bool r.rec_certify;
         Wire.spec_verdict_to_wire r.rec_verdict;
       ])

let spec_record r =
  Printf.sprintf
    "spec|1|digest=%s|req=%s|cmd=%s|certify=%b|verdict=%s|secs=%.6f|fp=%s"
    (escape r.rec_digest) (escape r.rec_req) (escape r.rec_cmd) r.rec_certify
    (Wire.spec_verdict_to_wire r.rec_verdict)
    r.rec_secs (fingerprint r)

let spec_of_record line =
  match String.split_on_char '|' line with
  | "spec" :: "1" :: fields ->
      let assoc =
        List.filter_map
          (fun f ->
            match String.index_opt f '=' with
            | Some i ->
                Some
                  ( String.sub f 0 i,
                    String.sub f (i + 1) (String.length f - i - 1) )
            | None -> None)
          fields
      in
      let ( let* ) = Option.bind in
      let* rec_digest = Option.map unescape (List.assoc_opt "digest" assoc) in
      let* rec_req = Option.map unescape (List.assoc_opt "req" assoc) in
      let* rec_cmd = Option.map unescape (List.assoc_opt "cmd" assoc) in
      let* rec_certify =
        Option.bind (List.assoc_opt "certify" assoc) bool_of_string_opt
      in
      let* rec_verdict =
        Option.bind (List.assoc_opt "verdict" assoc) Wire.spec_verdict_of_wire
      in
      let* rec_secs =
        Option.bind (List.assoc_opt "secs" assoc) float_of_string_opt
      in
      let* fp = List.assoc_opt "fp" assoc in
      let r =
        { rec_digest; rec_req; rec_cmd; rec_certify; rec_verdict; rec_secs }
      in
      if fp = fingerprint r then Some r else None
  | _ -> None
