(** Per-tenant admission control for the [submit] verb: a token-bucket
    rate limit plus weighted-fair queue occupancy.

    The token bucket smooths request rate (each admission spends one
    token; buckets refill at [rate] per second up to [burst]). The
    fair-share rule bounds how much of the server's work queue one
    tenant may occupy at once: a tenant holding at least
    [queue_cap / (active tenants + 1)] slots is refused until one of
    its jobs completes — so a flooding tenant cannot starve a polite
    one, whatever its request rate. The anonymous tenant ([""])
    bypasses both, preserving the untenanted [check] verb's behavior.

    All entry points are thread-safe (one registry mutex); the
    registry is bounded at [max_tenants] with least-recently-seen
    eviction of slot-free entries, so hostile clients cannot grow it
    without bound by inventing tenant names. *)

type config = {
  rate : float;  (** tokens per second *)
  burst : float;  (** bucket capacity *)
  max_tenants : int;  (** registry bound before eviction kicks in *)
}

val default_config : config
(** 5 submissions/s sustained, bursts of 10, 1024 tracked tenants. *)

type t

val create : config -> t

type decision =
  | Granted
  | Quota of { retry_after_s : float }
      (** refused; the client should wait at least this long *)

val admit : t -> now:float -> queue_cap:int -> string -> decision
(** [admit t ~now ~queue_cap name] spends one token and takes one
    queue slot, or refuses. On [Granted] the caller MUST pair it with
    {!release} once the job leaves the queue (served or failed). *)

val release : t -> string -> unit
(** Returns the queue slot taken by a [Granted] admission. *)

val active : t -> int
(** Tenants currently holding at least one queue slot. *)

val note_served : t -> string -> unit
(** Counts one submission answered with substance (a spec verdict or a
    typed diagnostic) for this tenant. No-op for the anonymous
    tenant. *)

val note_cached : t -> string -> unit
(** Counts one cache-served submission (a subset of served). *)

val stats : t -> (string * int) list
(** Per-tenant accounting rows for the [stats] wire reply:
    [tenant.<name>.served], [tenant.<name>.refused] (quota refusals,
    counted inside {!admit}) and [tenant.<name>.cached], sorted by
    tenant name. Counters live in the bounded registry, so a tenant
    evicted under registry pressure restarts from zero — operational
    accounting, not billing-grade bookkeeping. *)
