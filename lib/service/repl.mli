(** Coordinator-journal replication: the primary publishes its journal
    record-by-record over the wire protocol; a warm standby pulls.

    Pull-based by design, one connection per pull: the standby sends
    [repl-hello|1|id=…|from=N]; the publisher answers one [repl-ack]
    (epoch, acknowledged position, record count) plus one [repl-frame]
    per record in [N..count), then closes.

    - The publisher serves from a {!Parallel.Journal} tailer over the
      journal {e file}, so only records the group commit has made
      durable are ever shipped — the replica is always a prefix of the
      primary's disk.
    - One pull = one accepted connection = one logical send under the
      socket-level fault shim ({!Shim}), so partition and crash windows
      from a {!Netsim.Faults} plan apply to replication directly.
    - A failed pull is one observed transport failure against the
      primary; the standby applies the same consecutive-failure
      discipline the coordinator applies to workers
      ({!Cluster.run_standby}). *)

type publisher

val start_publisher :
  addr:Server.addr -> journal:string -> epoch:int -> publisher
(** Binds [addr] and serves pulls from a background domain, tailing
    [journal] (which need not exist yet) on each pull. [epoch] is the
    publishing coordinator's leadership epoch, echoed in every
    [repl-ack]. Raises [Unix.Unix_error] if the address cannot be
    bound. *)

val stop_publisher : publisher -> unit
(** Stops the acceptor domain and closes the listener. Idempotent. *)

type pulled = {
  pulled_epoch : int;  (** the publisher's leadership epoch *)
  pulled_have : int;  (** the publisher's total record count *)
  pulled_records : string list;
      (** records [from..pulled_have), fingerprint-verified and
          contiguous — a rejected frame rejects the whole pull *)
}

val pull :
  ?timeout_s:float -> Server.addr -> from:int -> (pulled, string) result
(** One pull: records from index [from] to the publisher's current
    count. Any transport failure, out-of-order frame, fingerprint
    mismatch, or an acknowledgment below [from] (the publisher holds a
    shorter history than the replica — divergence, not lag) is an
    [Error]; nothing from a failed pull should enter the replica. *)
