type config = { rate : float; burst : float; max_tenants : int }

let default_config = { rate = 5.0; burst = 10.0; max_tenants = 1024 }

type entry = {
  mutable tokens : float;
  mutable last : float;  (** last refill instant *)
  mutable slots : int;  (** queue slots currently held *)
  mutable last_seen : float;  (** eviction ordering *)
  mutable served : int;  (** submissions answered with substance *)
  mutable refused : int;  (** quota refusals (either rule) *)
  mutable cached : int;  (** the subset of [served] from the cache *)
}

type t = {
  cfg : config;
  mutex : Mutex.t;
  entries : (string, entry) Hashtbl.t;
}

let create cfg = { cfg; mutex = Mutex.create (); entries = Hashtbl.create 64 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* registry bound: drop the least-recently-seen tenant that holds no
   queue slot. If every entry holds slots (more tenants mid-flight
   than max_tenants — queue_cap makes that practically impossible),
   grow past the bound rather than lose accounting. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun name e acc ->
        if e.slots > 0 then acc
        else
          match acc with
          | Some (_, seen) when seen <= e.last_seen -> acc
          | _ -> Some (name, e.last_seen))
      t.entries None
  in
  match victim with
  | Some (name, _) -> Hashtbl.remove t.entries name
  | None -> ()

let entry_of t ~now name =
  match Hashtbl.find_opt t.entries name with
  | Some e -> e
  | None ->
      if Hashtbl.length t.entries >= t.cfg.max_tenants then evict_one t;
      let e =
        { tokens = t.cfg.burst; last = now; slots = 0; last_seen = now;
          served = 0; refused = 0; cached = 0 }
      in
      Hashtbl.add t.entries name e;
      e

type decision = Granted | Quota of { retry_after_s : float }

let holders t =
  Hashtbl.fold (fun _ e n -> if e.slots > 0 then n + 1 else n) t.entries 0

let admit t ~now ~queue_cap name =
  if name = "" then Granted
  else
    locked t @@ fun () ->
    let e = entry_of t ~now name in
    e.last_seen <- now;
    e.tokens <-
      Float.min t.cfg.burst (e.tokens +. ((now -. e.last) *. t.cfg.rate));
    e.last <- now;
    if e.tokens < 1.0 then begin
      e.refused <- e.refused + 1;
      Quota { retry_after_s = (1.0 -. e.tokens) /. t.cfg.rate }
    end
    else begin
      (* fair share of the queue among tenants currently in flight,
         with headroom for one newcomer *)
      let others = holders t - if e.slots > 0 then 1 else 0 in
      let share = max 1 (queue_cap / (others + 2)) in
      if e.slots >= share then begin
        (* not a rate problem: retry once a slot frees up. Advertise
           one expected service interval. *)
        e.refused <- e.refused + 1;
        Quota { retry_after_s = 1.0 /. t.cfg.rate }
      end
      else begin
        e.tokens <- e.tokens -. 1.0;
        e.slots <- e.slots + 1;
        Granted
      end
    end

let release t name =
  if name <> "" then
    locked t @@ fun () ->
    match Hashtbl.find_opt t.entries name with
    | Some e -> e.slots <- max 0 (e.slots - 1)
    | None -> ()

let active t = locked t @@ fun () -> holders t

(* ---- per-tenant accounting ----------------------------------------- *)

(* Serving happens in a worker domain after admission released the
   registry mutex, so the notes re-find the entry; a tenant evicted
   between admission and service (possible only once the registry is
   past max_tenants) just loses that one count. *)

let note t name f =
  if name <> "" then
    locked t @@ fun () ->
    match Hashtbl.find_opt t.entries name with Some e -> f e | None -> ()

let note_served t name = note t name (fun e -> e.served <- e.served + 1)

let note_cached t name = note t name (fun e -> e.cached <- e.cached + 1)

let stats t =
  locked t @@ fun () ->
  let rows =
    Hashtbl.fold
      (fun name e acc -> (name, e.served, e.refused, e.cached) :: acc)
      t.entries []
  in
  let rows = List.sort compare rows in
  List.concat_map
    (fun (name, served, refused, cached) ->
      [
        (Printf.sprintf "tenant.%s.served" name, served);
        (Printf.sprintf "tenant.%s.refused" name, refused);
        (Printf.sprintf "tenant.%s.cached" name, cached);
      ])
    rows
