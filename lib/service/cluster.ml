(* The sharded verification cluster coordinator.

   Design in one paragraph: the sweep's task list is laid out as an
   array of slots (task order, so the report renders byte-identically
   to the single-process sweep); each slot carries a first-result-wins
   Atomic CAS; dispatcher domains drain an atomic queue of slot
   indexes, walking each cell's Shard failover route — owner first —
   with per-cell Backoff jitter between attempts; transport failures
   are failure *evidence* against the worker (down after [down_after]
   consecutive), shed replies are not (the worker answered — it is
   merely full); a heartbeat domain probes liveness with the stats
   request and revives workers; once the queue is empty dispatchers
   turn into stealers and duplicate the oldest straggler onto a
   sibling; decided verdicts from a non-owner are re-derived locally
   under DRUP certification before being accepted. The journal records
   dispatch intents ([disp] frames, ignored by every cell reader) and
   decided cells (standard [cell] frames, interchangeable with
   mca_check --sweep --resume). *)

module E = Core.Experiments
module M = Core.Mca_model

type config = {
  workers : Server.addr list;
  dispatchers : int;
  seed : int;
  deadline_s : float;
  timeout_s : float;
  max_attempts : int;
  backoff : Netsim.Backoff.t;
  down_after : int;
  heartbeat_s : float;
  steal_after_s : float;
  verify_relocated : bool;
  ring_points : int;
  cl_journal : string option;
  cl_resume : bool;
  cl_flush_every : int;
  epoch : int;
      (** leadership epoch; 0 = unfenced legacy mode. When positive,
          every worker is fenced to it before dispatch, every request
          and journal record is stamped with it, and a [fenced] reply
          (a newer coordinator exists) deposes this run. *)
  repl_listen : Server.addr option;
      (** serve journal replication pulls from this address (requires
          [cl_journal]) — the warm standby's feed *)
  cl_throttle_s : float;
      (** sleep this long before dispatching each cell; 0 = off. Meant
          for failover tests and benches that must land a kill or a
          partition mid-sweep deterministically, not for production. *)
}

let default_config workers =
  {
    workers;
    dispatchers = 4;
    seed = 1;
    deadline_s = 30.0;
    timeout_s = 35.0;
    max_attempts = 5;
    backoff = Netsim.Backoff.make ~base_s:0.02 ~cap_s:0.5 ();
    down_after = 2;
    heartbeat_s = 0.5;
    steal_after_s = 5.0;
    verify_relocated = true;
    ring_points = 64;
    cl_journal = None;
    cl_resume = false;
    cl_flush_every = 1;
    epoch = 0;
    repl_listen = None;
    cl_throttle_s = 0.0;
  }

type report = {
  sweep : E.sweep_report;
  cluster_stats : (string * int) list;
  worker_up : bool list;
  cl_epoch : int;  (** the epoch this run dispatched under *)
  deposed : bool;
      (** a worker refused us for a stale epoch: a newer coordinator
          took over mid-sweep. Dispatch and journaling stopped at the
          first refusal; the report is partial and must not be
          trusted past it — the successor owns the sweep now. *)
}

(* ---- internal state ----------------------------------------------- *)

type worker_state = {
  w_addr : Server.addr;
  w_fails : int Atomic.t;  (* consecutive observed transport failures *)
  w_down : bool Atomic.t;
}

type task =
  string * Mca.Policy.t * M.policy * string * M.scope_spec

type done_cell = {
  d_cell : E.sweep_cell;
  d_worker : int;  (* -1: resumed or synthesized locally *)
  d_relocated : bool;
}

type slot = {
  s_index : int;
  s_task : task;
  s_key : string;  (* scope_tag ^ "/" ^ policy_label — the shard key *)
  s_route : int list;
  s_primary : int;
  mutable s_started : float;  (* last dispatch time; racy reads are benign *)
  s_attempting : int Atomic.t;  (* worker currently asked, -1 if none *)
  s_steal_guard : bool Atomic.t;
  s_result : done_cell option Atomic.t;
}

type counters = {
  c_dispatched : int Atomic.t;
  c_failovers : int Atomic.t;  (* attempts abandoned on transport failure *)
  c_shed_retries : int Atomic.t;
  c_soft_retries : int Atomic.t;  (* undecided/refused answers retried *)
  c_relocated : int Atomic.t;
  c_recertified : int Atomic.t;
  c_recert_mismatch : int Atomic.t;
  c_steals : int Atomic.t;
  c_steal_wins : int Atomic.t;
  c_hb_probes : int Atomic.t;
  c_hb_failures : int Atomic.t;
  c_marked_down : int Atomic.t;
  c_revived : int Atomic.t;
  c_fenced : int Atomic.t;  (* replies refusing our epoch as stale *)
}

let fresh_counters () =
  {
    c_dispatched = Atomic.make 0;
    c_failovers = Atomic.make 0;
    c_shed_retries = Atomic.make 0;
    c_soft_retries = Atomic.make 0;
    c_relocated = Atomic.make 0;
    c_recertified = Atomic.make 0;
    c_recert_mismatch = Atomic.make 0;
    c_steals = Atomic.make 0;
    c_steal_wins = Atomic.make 0;
    c_hb_probes = Atomic.make 0;
    c_hb_failures = Atomic.make 0;
    c_marked_down = Atomic.make 0;
    c_revived = Atomic.make 0;
    c_fenced = Atomic.make 0;
  }

let counters_assoc c =
  [
    ("dispatched", Atomic.get c.c_dispatched);
    ("failovers", Atomic.get c.c_failovers);
    ("shed_retries", Atomic.get c.c_shed_retries);
    ("soft_retries", Atomic.get c.c_soft_retries);
    ("relocated", Atomic.get c.c_relocated);
    ("recertified", Atomic.get c.c_recertified);
    ("recert_mismatch", Atomic.get c.c_recert_mismatch);
    ("steals", Atomic.get c.c_steals);
    ("steal_wins", Atomic.get c.c_steal_wins);
    ("hb_probes", Atomic.get c.c_hb_probes);
    ("hb_failures", Atomic.get c.c_hb_failures);
    ("marked_down", Atomic.get c.c_marked_down);
    ("revived", Atomic.get c.c_revived);
    ("fenced", Atomic.get c.c_fenced);
  ]

let cell_decided (c : E.sweep_cell) =
  match (c.E.sat_verdict, c.E.exhaustive) with
  | E.Undecided _, _ | _, E.Undecided _ -> false
  | _ -> true

let sat_decided (c : E.sweep_cell) =
  match c.E.sat_verdict with E.Undecided _ -> false | _ -> true

(* dispatch-intent record: the handoff audit trail. Foreign to every
   cell reader (Experiments.cell_of_record and the server's cache both
   return None for it), so the journal stays interchangeable. *)
let disp_record ~seed ~key ~worker ~attempt =
  Printf.sprintf "disp|1|seed=%d|key=%s|worker=%d|attempt=%d" seed
    (E.escape_field key) worker attempt

(* ---- epoch records -------------------------------------------------- *)

(* Leadership marker, written once at the head of each coordinator's
   tenure. Foreign to cell readers, like [disp]. Additionally, when a
   run has a positive epoch every journaled record gets an
   [|epoch=N] suffix — cell records stay interchangeable with
   [mca_check --sweep --resume] because the cell codec ignores fields
   it does not know and its fingerprint covers only semantic fields. *)
let epoch_record ~seed ~epoch =
  Printf.sprintf "epoch|1|seed=%d|epoch=%d" seed epoch

(* the highest [epoch=N] field anywhere in a record, 0 if none — reads
   both epoch markers and stamped cell/disp records *)
let record_epoch line =
  match String.split_on_char '|' line with
  | _kind :: "1" :: fields ->
      List.fold_left
        (fun acc f ->
          match String.index_opt f '=' with
          | Some i when String.sub f 0 i = "epoch" -> (
              match
                int_of_string_opt (String.sub f (i + 1) (String.length f - i - 1))
              with
              | Some e -> max acc e
              | None -> acc)
          | _ -> acc)
        0 fields
  | _ -> 0

(* the durable epoch floor: the highest epoch recorded in a journal
   file. A restarted coordinator reads this before choosing its own
   epoch, so a crash can never make it reuse one it already spent. *)
let latest_epoch path =
  List.fold_left
    (fun acc line -> max acc (record_epoch line))
    0 (Parallel.Journal.read path).Parallel.Journal.entries

let commit_epoch path ~seed ~epoch =
  let w = Parallel.Journal.open_append path in
  Fun.protect
    ~finally:(fun () -> Parallel.Journal.close w)
    (fun () -> Parallel.Journal.append w (epoch_record ~seed ~epoch))

(* ---- run_sweep ---------------------------------------------------- *)

let run_sweep ?(stop = fun () -> Parallel.Supervise.draining ()) ?scopes cfg =
  if cfg.workers = [] then invalid_arg "Cluster.run_sweep: no workers";
  if cfg.dispatchers < 1 then invalid_arg "Cluster.run_sweep: dispatchers < 1";
  if cfg.max_attempts < 1 then invalid_arg "Cluster.run_sweep: max_attempts < 1";
  if cfg.cl_resume && cfg.cl_journal = None then
    invalid_arg "Cluster.run_sweep: cl_resume without cl_journal";
  if cfg.epoch < 0 then invalid_arg "Cluster.run_sweep: negative epoch";
  if cfg.repl_listen <> None && cfg.cl_journal = None then
    invalid_arg "Cluster.run_sweep: repl_listen without cl_journal";
  let t0 = Unix.gettimeofday () in
  let tasks = E.sweep_tasks ?scopes () in
  let workers = Array.of_list cfg.workers in
  let n_workers = Array.length workers in
  let states =
    Array.map
      (fun a -> { w_addr = a; w_fails = Atomic.make 0; w_down = Atomic.make false })
      workers
  in
  let ring = Shard.make ~points:cfg.ring_points n_workers in
  let ctr = fresh_counters () in

  (* resume: journaled cells (same seed, digest-checked) short-circuit
     their slots; last write wins, like the single-process sweep *)
  let resumed : (string, E.sweep_cell) Hashtbl.t = Hashtbl.create 16 in
  (match (cfg.cl_resume, cfg.cl_journal) with
  | true, Some path ->
      let r = Parallel.Journal.recover path in
      List.iter
        (fun line ->
          match E.cell_of_record line with
          | Some (seed, cell) when seed = cfg.seed ->
              Hashtbl.replace resumed (cell.E.scope_tag ^ "/" ^ cell.E.policy_label) cell
          | _ -> ())
        r.Parallel.Journal.entries
  | _ -> ());
  let writer =
    Option.map
      (fun p -> Parallel.Journal.open_append ~flush_every:cfg.cl_flush_every p)
      cfg.cl_journal
  in
  (* Deposition: set on the first [fenced] reply. The commit gate runs
     under the journal lock, so once the flag is observed here no
     further record — cell or dispatch intent — can reach the file:
     everything a deposed coordinator computes after the refusal dies
     in memory, which is the journal half of the split-brain
     argument (the worker half is the epoch watermark). *)
  let deposed = Atomic.make false in
  let deposed_by = Atomic.make 0 in
  let journal_lock = Mutex.create () in
  let journal_raw line =
    match writer with
    | None -> ()
    | Some w ->
        Mutex.lock journal_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock journal_lock)
          (fun () ->
            if not (Atomic.get deposed) then Parallel.Journal.append w line)
  in
  let journal line =
    journal_raw
      (if cfg.epoch > 0 then
         Printf.sprintf "%s|epoch=%d" line cfg.epoch
       else line)
  in
  if cfg.epoch > 0 then journal_raw (epoch_record ~seed:cfg.seed ~epoch:cfg.epoch);
  let publisher =
    match (cfg.repl_listen, cfg.cl_journal) with
    | Some addr, Some path ->
        Some (Repl.start_publisher ~addr ~journal:path ~epoch:cfg.epoch)
    | _ -> None
  in

  let slots =
    Array.mapi
      (fun i ((label, _, _, tag, _) as task) ->
        let key = tag ^ "/" ^ label in
        let route = Shard.route ring key in
        let slot =
          {
            s_index = i;
            s_task = task;
            s_key = key;
            s_route = route;
            s_primary = (match route with w :: _ -> w | [] -> 0);
            s_started = 0.0;
            s_attempting = Atomic.make (-1);
            s_steal_guard = Atomic.make false;
            s_result = Atomic.make None;
          }
        in
        (match Hashtbl.find_opt resumed key with
        | Some cell ->
            Atomic.set slot.s_result
              (Some { d_cell = cell; d_worker = -1; d_relocated = false })
        | None -> ());
        slot)
      tasks
  in
  let total = Array.length slots in
  let completed =
    Atomic.make
      (Array.fold_left
         (fun acc s -> if Atomic.get s.s_result <> None then acc + 1 else acc)
         0 slots)
  in
  let resumed_count = Atomic.get completed in
  let all_done () = Atomic.get completed >= total in

  (* ---- worker liveness evidence ---- *)
  let worker_fail w =
    let f = Atomic.fetch_and_add states.(w).w_fails 1 + 1 in
    if f >= cfg.down_after then
      if not (Atomic.exchange states.(w).w_down true) then
        Atomic.incr ctr.c_marked_down
  in
  let worker_ok w =
    Atomic.set states.(w).w_fails 0;
    if Atomic.exchange states.(w).w_down false then Atomic.incr ctr.c_revived
  in

  (* ---- announce the epoch before dispatching anything ---- *)
  (* Fence-first ordering is what makes takeover safe: by the time this
     coordinator asks any worker for work, every reachable worker's
     watermark is at [cfg.epoch], so a deposed predecessor's next
     request meets a refusal there. A worker that cannot be reached is
     ordinary failure evidence — if it comes back it learns the epoch
     from our first stamped request instead. *)
  if cfg.epoch > 0 then
    Array.iteri
      (fun i w ->
        match
          Client.fence ~timeout_s:(Float.min cfg.timeout_s 2.0) w.w_addr
            ~epoch:cfg.epoch
        with
        | Ok _ -> worker_ok i
        | Result.Error _ -> worker_fail i)
      states;

  (* ---- certified relocation re-check ---- *)
  let shared_lock = Mutex.create () in
  let shared_tbl : (string * int, M.shared) Hashtbl.t = Hashtbl.create 4 in
  let shared_for tag scope target =
    Mutex.lock shared_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock shared_lock)
      (fun () ->
        match Hashtbl.find_opt shared_tbl (tag, target) with
        | Some sh -> sh
        | None ->
            let sh = M.build_shared ~target M.Efficient scope in
            Hashtbl.add shared_tbl (tag, target) sh;
            sh)
  in
  let recertify slot =
    let _, _, mpolicy, tag, scope = slot.s_task in
    let target = min mpolicy.M.target scope.M.vnodes in
    match
      let sh = shared_for tag scope target in
      M.check_consensus_shared_certified sh { mpolicy with M.target }
    with
    | { Relalg.Translate.outcome = Relalg.Translate.Unsat; _ } -> Some E.Holds
    | { Relalg.Translate.outcome = Relalg.Translate.Sat _; _ } ->
        Some E.Violated
    | exception _ -> None
  in

  (* ---- accepting a cell (first result wins) ---- *)
  let accept slot ~worker ~stolen cell =
    let relocated = worker >= 0 && worker <> slot.s_primary in
    let cell, recert =
      if relocated && cfg.verify_relocated && sat_decided cell then
        match recertify slot with
        | Some v when v = cell.E.sat_verdict -> (cell, `Confirmed)
        | Some v ->
            (* the locally DRUP-certified answer wins over the remote one *)
            ({ cell with E.sat_verdict = v }, `Mismatch)
        | None -> (cell, `Unavailable)
      else (cell, `Skipped)
    in
    if
      Atomic.compare_and_set slot.s_result None
        (Some { d_cell = cell; d_worker = worker; d_relocated = relocated })
    then begin
      Atomic.incr completed;
      if relocated then Atomic.incr ctr.c_relocated;
      (match recert with
      | `Confirmed -> Atomic.incr ctr.c_recertified
      | `Mismatch -> Atomic.incr ctr.c_recert_mismatch
      | `Unavailable | `Skipped -> ());
      if stolen then Atomic.incr ctr.c_steal_wins;
      if cell_decided cell then journal (E.cell_record ~seed:cfg.seed cell);
      true
    end
    else false
  in

  (* ---- one attempt against one worker ---- *)
  let request_of slot ~id_suffix =
    let label, _, _, _, scope = slot.s_task in
    Wire.request
      ~id:(Printf.sprintf "c%d%s" slot.s_index id_suffix)
      ~agents:scope.M.pnodes ~items:scope.M.vnodes ~states:scope.M.states
      ~values:scope.M.values ~seed:cfg.seed ~deadline_s:cfg.deadline_s
      ?epoch:(if cfg.epoch > 0 then Some cfg.epoch else None)
      label
  in
  let cell_of_reply slot (v : Wire.verdict_reply) =
    let label, _, _, tag, _ = slot.s_task in
    {
      E.policy_label = label;
      scope_tag = tag;
      sat_verdict = v.Wire.sat;
      sim_ok = v.Wire.sim_ok;
      exhaustive = v.Wire.exhaustive;
      cell_seconds = v.Wire.secs;
      origin = E.Computed;
    }
  in
  let try_worker slot w ~id_suffix ~stolen =
    Atomic.set slot.s_attempting w;
    slot.s_started <- Unix.gettimeofday ();
    Atomic.incr ctr.c_dispatched;
    let outcome =
      match
        Client.check ~timeout_s:cfg.timeout_s states.(w).w_addr
          (request_of slot ~id_suffix)
      with
      | Ok (Wire.Verdict v) ->
          worker_ok w;
          let cell = cell_of_reply slot v in
          if cell_decided cell then begin
            ignore (accept slot ~worker:w ~stolen cell);
            `Accepted
          end
          else
            (* the worker answered but ran out of budget or was
               draining: a sibling may do better — soft failure *)
            `Soft cell
      | Ok (Wire.Shed _) ->
          worker_ok w;
          `Shed
      | Ok (Wire.Error { msg; _ }) ->
          worker_ok w;
          `Refused msg
      | Ok (Wire.Fenced { fenced_epoch; _ }) ->
          (* the worker answered — it is alive — but a coordinator with
             a newer epoch owns the fleet now. This run is over. *)
          worker_ok w;
          Atomic.incr ctr.c_fenced;
          let rec bump () =
            let cur = Atomic.get deposed_by in
            if fenced_epoch > cur && not (Atomic.compare_and_set deposed_by cur fenced_epoch)
            then bump ()
          in
          bump ();
          Atomic.set deposed true;
          `Fenced
      | Ok
          ( Wire.Stats _ | Wire.Spec _ | Wire.Quota _ | Wire.Bad_spec _
          | Wire.Repl_ack _ | Wire.Repl_frame _ ) ->
          `Transport "unexpected reply kind to check"
      | Result.Error msg ->
          worker_fail w;
          `Transport msg
    in
    Atomic.set slot.s_attempting (-1);
    outcome
  in

  (* ---- failover routing ---- *)
  let pick_worker slot ~attempt ~avoid =
    let healthy =
      List.filter (fun w -> not (Atomic.get states.(w).w_down)) slot.s_route
    in
    let candidates =
      match List.filter (fun w -> Some w <> avoid) healthy with
      | [] -> healthy  (* nobody else: retry the avoided worker *)
      | l -> l
    in
    match candidates with
    | [] -> None
    | l -> Some (List.nth l ((attempt - 1) mod List.length l))
  in

  (* ---- the per-slot dispatch loop ---- *)
  let undecided_with slot reason origin =
    let label, _, _, tag, _ = slot.s_task in
    {
      E.policy_label = label;
      scope_tag = tag;
      sat_verdict = E.Undecided reason;
      sim_ok = false;
      exhaustive = E.Undecided reason;
      cell_seconds = 0.0;
      origin;
    }
  in
  let halted () = stop () || Atomic.get deposed in
  let dispatch_slot slot =
    if Atomic.get slot.s_result = None && not (Atomic.get deposed) then begin
      if cfg.cl_throttle_s > 0.0 then Unix.sleepf cfg.cl_throttle_s;
      let rng =
        Netsim.Backoff.stream ~seed:cfg.seed ~key:("cluster/" ^ slot.s_key)
      in
      let last_soft = ref None in
      let rec go attempt ~avoid =
        if Atomic.get slot.s_result <> None || halted () then ()
        else if attempt > cfg.max_attempts then
          (* report the fleet's last honest answer, not a fabricated one *)
          let cell =
            match !last_soft with
            | Some c -> { c with E.origin = E.Quarantined }
            | None ->
                undecided_with slot
                  (Printf.sprintf "cluster: no answer after %d attempts"
                     cfg.max_attempts)
                  E.Quarantined
          in
          ignore (accept slot ~worker:(-1) ~stolen:false cell)
        else begin
          let retry ?failed () =
            Unix.sleepf (Netsim.Backoff.delay cfg.backoff ~rng ~attempt);
            go (attempt + 1) ~avoid:failed
          in
          match pick_worker slot ~attempt ~avoid with
          | None ->
              (* the whole fleet looks down; wait out a backoff — the
                 heartbeat may revive someone *)
              retry ()
          | Some w -> (
              journal (disp_record ~seed:cfg.seed ~key:slot.s_key ~worker:w ~attempt);
              match try_worker slot w ~id_suffix:(Printf.sprintf "-a%d" attempt) ~stolen:false with
              | `Accepted -> ()
              | `Fenced -> ()  (* deposed: the successor owns this cell *)
              | `Soft cell ->
                  last_soft := Some cell;
                  Atomic.incr ctr.c_soft_retries;
                  retry ~failed:w ()
              | `Shed ->
                  Atomic.incr ctr.c_shed_retries;
                  retry ~failed:w ()
              | `Refused msg ->
                  last_soft :=
                    Some (undecided_with slot ("cluster: worker refused: " ^ msg) E.Computed);
                  Atomic.incr ctr.c_soft_retries;
                  retry ~failed:w ()
              | `Transport _ ->
                  Atomic.incr ctr.c_failovers;
                  retry ~failed:w ())
        end
      in
      go 1 ~avoid:None
    end
  in

  (* ---- work stealing ---- *)
  let steal_pass () =
    let now = Unix.gettimeofday () in
    let best = ref None in
    Array.iter
      (fun slot ->
        if
          Atomic.get slot.s_result = None
          && Atomic.get slot.s_attempting >= 0
          && (not (Atomic.get slot.s_steal_guard))
          && now -. slot.s_started >= cfg.steal_after_s
        then
          match !best with
          | Some b when b.s_started <= slot.s_started -> ()
          | _ -> best := Some slot)
      slots;
    match !best with
    | None -> false
    | Some slot ->
        if Atomic.compare_and_set slot.s_steal_guard false true then begin
          let victim = Atomic.get slot.s_attempting in
          (match
             List.filter
               (fun w -> w <> victim && not (Atomic.get states.(w).w_down))
               slot.s_route
           with
          | [] -> ()
          | w :: _ ->
              Atomic.incr ctr.c_steals;
              journal (disp_record ~seed:cfg.seed ~key:slot.s_key ~worker:w ~attempt:0);
              (* first verdict wins the CAS; a failed steal changes
                 nothing — the original attempt is still running *)
              ignore (try_worker slot w ~id_suffix:"-steal" ~stolen:true));
          Atomic.set slot.s_steal_guard false;
          true
        end
        else false
  in

  (* ---- domains ---- *)
  let next = Atomic.make 0 in
  let dispatcher () =
    let rec drain () =
      let i = Atomic.fetch_and_add next 1 in
      if i < total then begin
        dispatch_slot slots.(i);
        drain ()
      end
    in
    drain ();
    (* queue empty: help stragglers until the sweep is complete *)
    let rec steal_loop () =
      if all_done () || halted () then ()
      else begin
        if not (steal_pass ()) then Unix.sleepf 0.02;
        steal_loop ()
      end
    in
    steal_loop ()
  in
  let hb_stop = Atomic.make false in
  let heartbeat () =
    if cfg.heartbeat_s > 0.0 then
      while not (Atomic.get hb_stop) do
        Array.iteri
          (fun i w ->
            if not (Atomic.get hb_stop) then begin
              Atomic.incr ctr.c_hb_probes;
              match
                Client.get_stats ~timeout_s:(Float.min cfg.timeout_s 2.0)
                  w.w_addr
              with
              | Ok _ -> worker_ok i
              | Result.Error _ ->
                  Atomic.incr ctr.c_hb_failures;
                  worker_fail i
            end)
          states;
        let until = Unix.gettimeofday () +. cfg.heartbeat_s in
        while (not (Atomic.get hb_stop)) && Unix.gettimeofday () < until do
          Unix.sleepf 0.05
        done
      done
  in
  let dispatchers =
    List.init cfg.dispatchers (fun _ -> Domain.spawn dispatcher)
  in
  let hb = Domain.spawn heartbeat in
  List.iter Domain.join dispatchers;
  Atomic.set hb_stop true;
  Domain.join hb;
  (match writer with Some w -> Parallel.Journal.close w | None -> ());
  (* the standby gets one last chance to pull everything the close just
     flushed; stopping the publisher before the writer would strand the
     final group-commit batch on our disk only *)
  (match publisher with Some p -> Repl.stop_publisher p | None -> ());

  (* ---- collect, in task order ---- *)
  let cells =
    Array.to_list
      (Array.map
         (fun slot ->
           match Atomic.get slot.s_result with
           | Some d -> d.d_cell
           | None -> undecided_with slot "drained" E.Skipped)
         slots)
  in
  let partial = List.exists (fun c -> c.E.origin = E.Skipped) cells in
  {
    sweep =
      {
        E.sweep_jobs = cfg.dispatchers;
        sweep_seed = cfg.seed;
        cells;
        sweep_wall = Unix.gettimeofday () -. t0;
        sweep_resumed = resumed_count;
        sweep_partial = partial;
      };
    cluster_stats = counters_assoc ctr;
    worker_up =
      Array.to_list (Array.map (fun w -> not (Atomic.get w.w_down)) states);
    cl_epoch = max cfg.epoch (Atomic.get deposed_by);
    deposed = Atomic.get deposed;
  }

let fleet_stats ?timeout_s addrs =
  List.mapi (fun i a -> (i, Client.get_stats ?timeout_s a)) addrs

(* ---- warm standby --------------------------------------------------- *)

type standby_config = {
  sb_cluster : config;
      (* the configuration the standby runs the sweep with at takeover.
         [cl_journal] is the *replica* journal path (required — it is
         what replication fills and what the takeover resumes from).
         [epoch] here is a floor of epochs known to be spent (e.g. read
         from an epoch journal with {!latest_epoch}), not an epoch to
         run at: the takeover epoch is one past the highest epoch seen
         anywhere — floor, replication acks, replicated records. *)
  sb_source : Server.addr;
  sb_poll_s : float;
  sb_lease_s : float;
  sb_down_after : int;
}

let default_standby ~source cluster =
  {
    sb_cluster = cluster;
    sb_source = source;
    sb_poll_s = 0.05;
    sb_lease_s = 1.0;
    sb_down_after = 3;
  }

type standby_outcome =
  | Took_over of {
      takeover_epoch : int;
      replicated : int;  (* records in the replica at takeover *)
      takeover_latency_s : float;  (* last successful pull -> takeover *)
      report : report;
    }
  | Standby_drained of { replicated : int }

(* The standby loop: pull, append, watch the lease.

   Liveness is evidence-based, exactly like the coordinator's view of
   its workers: only *observed* failed pulls count, and takeover
   additionally requires the lease — a wall-clock span since the last
   successful pull — to have elapsed. Both conditions together mean a
   merely slow primary (one long GC pause, one dropped connection)
   cannot trigger a takeover by itself; a partitioned or dead one
   cannot avoid it. Split-brain safety does NOT rest on this detector
   being right — it may fire against a partitioned-but-alive primary —
   but on epoch fencing: the takeover sweep runs at an epoch strictly
   above anything the old primary ever held, fences every worker
   first, and the old primary's next dispatch meets [fenced] refusals
   and deposes itself without committing another record. *)
let run_standby ?(stop = fun () -> Parallel.Supervise.draining ()) ?scopes
    ?(on_replicated = fun (_ : int) -> ()) sb =
  let cfg = sb.sb_cluster in
  let path =
    match cfg.cl_journal with
    | Some p -> p
    | None -> invalid_arg "Cluster.run_standby: sb_cluster.cl_journal required"
  in
  if sb.sb_poll_s <= 0.0 then invalid_arg "Cluster.run_standby: sb_poll_s <= 0";
  if sb.sb_down_after < 1 then
    invalid_arg "Cluster.run_standby: sb_down_after < 1";
  (* resume an existing replica; recover truncates a torn tail we could
     only have if a previous standby died mid-append (pulls themselves
     only ever deliver whole verified records) *)
  let existing = (Parallel.Journal.recover path).Parallel.Journal.entries in
  let count = ref (List.length existing) in
  let epoch_seen =
    ref
      (List.fold_left
         (fun acc l -> max acc (record_epoch l))
         (max 0 cfg.epoch) existing)
  in
  let w = Parallel.Journal.open_append ~flush_every:1 path in
  let closed = ref false in
  let close_writer () =
    if not !closed then begin
      closed := true;
      Parallel.Journal.close w
    end
  in
  let fails = ref 0 in
  let last_ok = ref (Unix.gettimeofday ()) in
  let rec loop () =
    if stop () then begin
      close_writer ();
      Standby_drained { replicated = !count }
    end
    else begin
      (match
         Repl.pull
           ~timeout_s:(Float.max sb.sb_poll_s 1.0)
           sb.sb_source ~from:!count
       with
      | Ok p ->
          fails := 0;
          last_ok := Unix.gettimeofday ();
          epoch_seen := max !epoch_seen p.Repl.pulled_epoch;
          List.iter
            (fun r ->
              Parallel.Journal.append w r;
              epoch_seen := max !epoch_seen (record_epoch r);
              incr count)
            p.Repl.pulled_records;
          on_replicated !count
      | Result.Error _ -> incr fails);
      let now = Unix.gettimeofday () in
      if !fails >= sb.sb_down_after && now -. !last_ok >= sb.sb_lease_s then begin
        close_writer ();
        let takeover_epoch = !epoch_seen + 1 in
        let latency = now -. !last_ok in
        let report =
          run_sweep ~stop ?scopes
            { cfg with cl_resume = true; epoch = takeover_epoch }
        in
        Took_over
          { takeover_epoch; replicated = !count; takeover_latency_s = latency; report }
      end
      else begin
        Unix.sleepf sb.sb_poll_s;
        loop ()
      end
    end
  in
  loop ()
