(** The service's wire protocol: newline-framed, pipe-separated
    [key=value] messages with the percent-escaping and verdict syntax
    of the sweep-journal records ({!Core.Experiments.cell_record}) —
    one vocabulary for requests, replies, and the on-disk journal.

    Frames on the wire:

    {v
    check|1|id=r1|policy=submod|n=2|j=2|st=5|vals=6|seed=1|deadline=2.5
    stats|1
    verdict|1|id=r1|proto=1|sat=holds|exh=holds|sim=true|rung=cdcl|cached=false|secs=0.41
    shed|1|id=|proto=1|depth=8|cap=8
    error|1|id=r1|proto=1|msg=unknown policy
    stats|1|proto=1|accepted=12|admitted=9|shed=3|...
    v}

    Forward compatibility: parsers on both sides ignore [key=value]
    fields they do not recognize, and every reply carries a
    [proto={!proto_version}] field — a coordinator and its workers can
    be upgraded independently, one protocol revision apart, without
    either side rejecting the other's messages. *)

val proto_version : int
(** The protocol revision this build speaks (currently [1]), stamped
    into every rendered reply. *)

type request = {
  id : string;  (** client-chosen correlation id, echoed in the reply *)
  policy : string;  (** a paper-grid label, e.g. ["submod+release"] *)
  agents : int;
  items : int;
  states : int;  (** trace length (netState scope) *)
  values : int;  (** bid levels of the efficient encoding *)
  seed : int;  (** utility seed — part of the cell identity *)
  deadline_s : float option;
      (** wall-clock allowance for this request, from the moment a
          worker picks it up; capped by the server's [max_deadline] *)
}

val request :
  ?id:string -> ?agents:int -> ?items:int -> ?states:int -> ?values:int ->
  ?seed:int -> ?deadline_s:float -> string -> request
(** [request policy] with the sweep defaults (2p/2v, 5 states,
    6 values, seed 1, no deadline). *)

val scope_of_request : request -> string * Core.Mca_model.scope_spec
(** The (scope tag, scope) pair, tagged exactly as [mca_check --sweep]
    tags it — so journal records are interchangeable between the two. *)

type verdict_reply = {
  req_id : string;
  sat : Core.Experiments.sweep_verdict;
  exhaustive : Core.Experiments.sweep_verdict;
  sim_ok : bool;
  rung : string;
      (** which ladder rung answered the SAT column: ["cdcl"], ["dpll"],
          ["explicit"], ["journal"] (cache hit) or ["none"] *)
  cached : bool;
  secs : float;
}

type response =
  | Verdict of verdict_reply
  | Shed of { req_id : string; depth : int; capacity : int }
      (** admission refused: queue depth was at the watermark *)
  | Error of { req_id : string; msg : string }
  | Stats of (string * int) list

type incoming = Check of request | Get_stats

val render_request : request -> string
val stats_request : string

val parse_incoming : string -> (incoming, string) result
(** Server side; the error string is safe to echo back to the client. *)

val render_response : response -> string
val parse_response : string -> (response, string) result
val pp_response : Format.formatter -> response -> unit
