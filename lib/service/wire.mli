(** The service's wire protocol: newline-framed, pipe-separated
    [key=value] messages with the percent-escaping and verdict syntax
    of the sweep-journal records ({!Core.Experiments.cell_record}) —
    one vocabulary for requests, replies, and the on-disk journal.

    Frames on the wire:

    {v
    check|1|id=r1|policy=submod|n=2|j=2|st=5|vals=6|seed=1|deadline=2.5
    submit|1|id=s1|tenant=alice|bytes=212|cmd=uniqueID|certify=true
    stats|1
    verdict|1|id=r1|proto=1|sat=holds|exh=holds|sim=true|rung=cdcl|cached=false|secs=0.41
    spec|1|id=s1|proto=1|digest=9af..|cmd=check uniqueID|verdict=holds|cert=true|cached=false|secs=0.12
    shed|1|id=|proto=1|depth=8|cap=8
    quota|1|id=s1|proto=1|tenant=mallory|retry=0.180
    error|1|id=s1|proto=1|stage=parse|line=3|col=7|eline=3|ecol=8|msg=...|hint=...
    error|1|id=r1|proto=1|msg=unknown policy
    stats|1|proto=1|accepted=12|admitted=9|shed=3|...
    fence|1|id=co2|epoch=2
    fenced|1|id=r9|proto=1|epoch=2
    repl-hello|1|id=sb1|from=4
    repl-ack|1|proto=1|epoch=1|from=4|have=6
    repl-frame|1|idx=4|fp=9af31c02|rec=cell%7c1%7cseed=1...
    v}

    A [submit] header line is followed by exactly [bytes] raw body
    bytes (the spec text, unescaped, newlines allowed) — the only
    frame that is not one line. The declared length is capped at
    {!max_spec_bytes} before a single body byte is read.

    Forward compatibility: parsers on both sides ignore [key=value]
    fields they do not recognize, and every reply carries a
    [proto={!proto_version}] field — a coordinator and its workers can
    be upgraded independently, one protocol revision apart, without
    either side rejecting the other's messages. *)

val proto_version : int
(** The protocol revision this build speaks (currently [1]), stamped
    into every rendered reply. *)

type request = {
  id : string;  (** client-chosen correlation id, echoed in the reply *)
  policy : string;  (** a paper-grid label, e.g. ["submod+release"] *)
  agents : int;
  items : int;
  states : int;  (** trace length (netState scope) *)
  values : int;  (** bid levels of the efficient encoding *)
  seed : int;  (** utility seed — part of the cell identity *)
  deadline_s : float option;
      (** wall-clock allowance for this request, from the moment a
          worker picks it up; capped by the server's [max_deadline] *)
  epoch : int option;
      (** the sending coordinator's leadership epoch. Workers remember
          the highest epoch they have seen and answer a lower one with
          {!Fenced} instead of doing any work — the split-brain guard
          for replicated coordinators. [None] (legacy clients, plain
          [mca_serve --client]) is never fenced. *)
}

val request :
  ?id:string -> ?agents:int -> ?items:int -> ?states:int -> ?values:int ->
  ?seed:int -> ?deadline_s:float -> ?epoch:int -> string -> request
(** [request policy] with the sweep defaults (2p/2v, 5 states,
    6 values, seed 1, no deadline, no epoch). *)

val scope_of_request : request -> string * Core.Mca_model.scope_spec
(** The (scope tag, scope) pair, tagged exactly as [mca_check --sweep]
    tags it — so journal records are interchangeable between the two. *)

val max_spec_bytes : int
(** Absolute framing cap on a submitted spec body (1 MiB). A header
    declaring more is rejected before any body byte is read,
    regardless of the per-server configured cap. *)

type submit_header = {
  sub_id : string;  (** client-chosen correlation id, echoed back *)
  tenant : string;  (** quota/fairness identity; [""] = anonymous *)
  spec_bytes : int;  (** declared body length following the header *)
  sub_cmd : string option;
      (** named check/run command to execute; [None] = the file's first *)
  certify : bool;  (** ask for a DRUP-certified verdict *)
  sub_deadline_s : float option;
}

val submit :
  ?id:string -> ?tenant:string -> ?cmd:string -> ?certify:bool ->
  ?deadline_s:float -> spec_bytes:int -> unit -> submit_header

type spec_verdict =
  | Spec_holds  (** check command: assertion holds in scope *)
  | Spec_counterexample  (** check command: counterexample exists *)
  | Spec_instance  (** run command: satisfying instance exists *)
  | Spec_none  (** run command: no instance in scope *)
  | Spec_unknown of string  (** budget or deadline exhausted; reason *)

val spec_verdict_to_wire : spec_verdict -> string
val spec_verdict_of_wire : string -> spec_verdict option

type spec_reply = {
  spec_id : string;
  digest : string;  (** content address (hex) of the spec text *)
  command : string;  (** the command that ran, e.g. ["check uniqueID"] *)
  spec_verdict : spec_verdict;
  certified : bool;  (** the refutation was DRUP-checked *)
  spec_cached : bool;  (** served from the verdict cache *)
  spec_secs : float;  (** solve seconds (the original ones on a hit) *)
}

type verdict_reply = {
  req_id : string;
  sat : Core.Experiments.sweep_verdict;
  exhaustive : Core.Experiments.sweep_verdict;
  sim_ok : bool;
  rung : string;
      (** which ladder rung answered the SAT column: ["cdcl"], ["dpll"],
          ["explicit"], ["journal"] (cache hit) or ["none"] *)
  cached : bool;
  secs : float;
}

type response =
  | Verdict of verdict_reply
  | Spec of spec_reply
  | Shed of { req_id : string; depth : int; capacity : int }
      (** admission refused: queue depth was at the watermark *)
  | Quota of { req_id : string; tenant : string; retry_after_s : float }
      (** per-tenant admission refused: token bucket empty or the
          tenant already holds its fair share of the queue *)
  | Bad_spec of { req_id : string; diag : Alloylite.Diag.t }
      (** typed rejection of a submitted spec, carrying the stage,
          span and hint of {!Alloylite.Diag}; rendered as an [error]
          frame with extra [stage=…|line=…|col=…] keys so old clients
          still see a refusal *)
  | Error of { req_id : string; msg : string }
  | Stats of (string * int) list
  | Fenced of { req_id : string; fenced_epoch : int }
      (** the request carried a coordinator epoch below this worker's
          watermark: a newer coordinator has announced itself at
          [fenced_epoch], so the worker refuses the deposed one —
          no verification runs and nothing is journaled *)
  | Repl_ack of { repl_epoch : int; repl_from : int; repl_have : int }
      (** replication handshake reply: the primary's current epoch,
          the acknowledged standby position, and the primary's record
          count; [Repl_frame] lines for [repl_from..repl_have-1]
          follow on the same connection *)
  | Repl_frame of { frame_idx : int; frame_fp : string; frame_rec : string }
      (** one replicated journal record with its index and the CRC-32
          fingerprint of its bytes (verified by the standby before the
          record enters the replica journal) *)

type incoming =
  | Check of request
  | Submit of submit_header
  | Get_stats
  | Fence of { fence_id : string; fence_epoch : int }
      (** raise this worker's epoch watermark to [fence_epoch] — sent
          by a coordinator announcing itself before dispatching work,
          so a deposed primary's next request is refused *)
  | Repl_hello of { repl_id : string; repl_from : int }
      (** a standby asking for journal records from [repl_from] on *)

val render_request : request -> string

val render_submit_header : submit_header -> string
(** The header line only — the caller sends the raw body bytes after
    the terminating newline. *)

val stats_request : string

val render_fence : id:string -> epoch:int -> string
(** The one-line [fence|1|id=…|epoch=…] request. *)

val render_repl_hello : id:string -> from:int -> string
(** The one-line [repl-hello|1|id=…|from=…] request. *)

val parse_incoming : string -> (incoming, string) result
(** Server side; the error string is safe to echo back to the client. *)

val render_response : response -> string
val parse_response : string -> (response, string) result
val pp_response : Format.formatter -> response -> unit
