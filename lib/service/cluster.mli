(** The sharded verification cluster: a partition-tolerant coordinator
    driving a fleet of [mca_serve] workers through the existing wire
    protocol.

    The coordinator runs a policy-matrix sweep ({!Core.Experiments})
    exactly like [mca_check --sweep] — same task list, same cell
    identity, same canonical rendering — but instead of verifying cells
    itself it consistent-hashes them over the fleet ({!Shard}) and
    survives whatever the fleet does to it:

    - {b failure detection is evidence-based} (the
      {!Parallel.Supervise} doctrine): a worker is marked down only
      after [down_after] consecutive {e observed} transport failures —
      a connection refused, reset, or closed before the reply — never
      on elapsed time alone. A slow worker gets stolen from, not
      declared dead. A heartbeat domain probes every worker with the
      [stats] request (answered inline by the server's acceptor even
      under full load, so it is a pure liveness signal) and revives a
      down worker the moment it answers again.
    - {b shed escalation}: a worker answering [shed] is healthy but
      full; the cell is retried on the next sibling in its {!Shard}
      failover route after a {!Netsim.Backoff} delay drawn from the
      cell's own jitter stream — the cluster never surfaces a SHED for
      a cell while any sibling has room.
    - {b work stealing}: once the dispatch queue is empty, idle
      dispatchers duplicate the oldest in-flight cell older than
      [steal_after_s] onto a different worker; the first verdict wins a
      per-cell atomic CAS and the loser is discarded.
    - {b certified relocation}: a decided SAT verdict produced by any
      worker other than the cell's ring owner is re-derived locally
      through {!Core.Mca_model.check_consensus_shared_certified} —
      DRUP-checked — before the coordinator accepts it; on a mismatch
      the locally certified answer wins and the event is counted.
    - {b journal-backed handoff}: with [cl_journal] every dispatch is
      recorded as a [disp] intent record and every decided cell as a
      standard {!Core.Experiments.cell_record}, group-committed. The
      journal is interchangeable with the single-process sweep's: a
      SIGKILL'd coordinator resumes with [cl_resume] (or hands the file
      to [mca_check --sweep --resume]) and completes byte-identically
      to an uninterrupted run.

    A cell still unanswered after [max_attempts] tries across the fleet
    is reported honestly as its last [Undecided] answer (origin
    [Quarantined]) — one unreachable cell never wedges the sweep. *)

type config = {
  workers : Server.addr list;
  dispatchers : int;  (** coordinator dispatch domains *)
  seed : int;
  deadline_s : float;  (** per-cell allowance sent with each request *)
  timeout_s : float;  (** per-attempt socket timeout (connect + I/O) *)
  max_attempts : int;  (** tries per cell across the fleet *)
  backoff : Netsim.Backoff.t;  (** retry delays, per-cell jitter streams *)
  down_after : int;  (** consecutive failures before a worker is down *)
  heartbeat_s : float;  (** liveness probe period; [0.] disables *)
  steal_after_s : float;  (** in-flight age before a cell is stolen *)
  verify_relocated : bool;  (** DRUP re-check of non-owner verdicts *)
  ring_points : int;  (** virtual nodes per worker on the ring *)
  cl_journal : string option;
  cl_resume : bool;
  cl_flush_every : int;  (** journal group-commit batch *)
}

val default_config : Server.addr list -> config
(** 4 dispatchers, seed 1, 30 s cell deadline, 35 s socket timeout,
    5 attempts, 20 ms–0.5 s backoff, down after 2, 0.5 s heartbeat,
    steal after 5 s, relocation re-check on, 64 ring points, no
    journal. *)

type report = {
  sweep : Core.Experiments.sweep_report;
      (** render with {!Core.Experiments.render_sweep} — byte-identical
          to the single-process sweep when every cell was decided *)
  cluster_stats : (string * int) list;
      (** dispatch/failover/steal/relocation/heartbeat counters *)
  worker_up : bool list;  (** final liveness, in [workers] order *)
}

val run_sweep :
  ?stop:(unit -> bool) ->
  ?scopes:(string * Core.Mca_model.scope_spec) list ->
  config -> report
(** Runs the full policy-matrix sweep through the fleet. [stop]
    (default {!Parallel.Supervise.draining}, so the standard
    SIGINT/SIGTERM drain handlers work unchanged) drains the cluster:
    in-flight cells finish, unstarted cells come back [Skipped] and the
    report is partial. Raises [Invalid_argument] on an empty worker
    list, non-positive dispatchers/attempts, or [cl_resume] without
    [cl_journal]. *)

val fleet_stats :
  ?timeout_s:float ->
  Server.addr list -> (int * ((string * int) list, string) result) list
(** One [stats] probe per worker, indexed — the [--stats] mode of the
    CLI. *)
