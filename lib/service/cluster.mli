(** The sharded verification cluster: a partition-tolerant coordinator
    driving a fleet of [mca_serve] workers through the existing wire
    protocol.

    The coordinator runs a policy-matrix sweep ({!Core.Experiments})
    exactly like [mca_check --sweep] — same task list, same cell
    identity, same canonical rendering — but instead of verifying cells
    itself it consistent-hashes them over the fleet ({!Shard}) and
    survives whatever the fleet does to it:

    - {b failure detection is evidence-based} (the
      {!Parallel.Supervise} doctrine): a worker is marked down only
      after [down_after] consecutive {e observed} transport failures —
      a connection refused, reset, or closed before the reply — never
      on elapsed time alone. A slow worker gets stolen from, not
      declared dead. A heartbeat domain probes every worker with the
      [stats] request (answered inline by the server's acceptor even
      under full load, so it is a pure liveness signal) and revives a
      down worker the moment it answers again.
    - {b shed escalation}: a worker answering [shed] is healthy but
      full; the cell is retried on the next sibling in its {!Shard}
      failover route after a {!Netsim.Backoff} delay drawn from the
      cell's own jitter stream — the cluster never surfaces a SHED for
      a cell while any sibling has room.
    - {b work stealing}: once the dispatch queue is empty, idle
      dispatchers duplicate the oldest in-flight cell older than
      [steal_after_s] onto a different worker; the first verdict wins a
      per-cell atomic CAS and the loser is discarded.
    - {b certified relocation}: a decided SAT verdict produced by any
      worker other than the cell's ring owner is re-derived locally
      through {!Core.Mca_model.check_consensus_shared_certified} —
      DRUP-checked — before the coordinator accepts it; on a mismatch
      the locally certified answer wins and the event is counted.
    - {b journal-backed handoff}: with [cl_journal] every dispatch is
      recorded as a [disp] intent record and every decided cell as a
      standard {!Core.Experiments.cell_record}, group-committed. The
      journal is interchangeable with the single-process sweep's: a
      SIGKILL'd coordinator resumes with [cl_resume] (or hands the file
      to [mca_check --sweep --resume]) and completes byte-identically
      to an uninterrupted run.

    A cell still unanswered after [max_attempts] tries across the fleet
    is reported honestly as its last [Undecided] answer (origin
    [Quarantined]) — one unreachable cell never wedges the sweep.

    {b Replication and epoch fencing} (the failover layer): a
    coordinator run can carry a positive leadership {e epoch}. It then
    announces the epoch to every worker ([fence] verb) before
    dispatching anything, stamps it into every wire request and every
    journal record, and — with [repl_listen] — publishes its journal
    record-by-record to a warm standby ({!Repl}). The standby
    ({!run_standby}) tails the journal into a local replica, watches
    primary liveness with the same evidence-based discipline the
    coordinator applies to workers, and on lease expiry takes over:
    re-derives the remaining cells from its replica ([cl_resume]) and
    finishes the sweep at an epoch strictly above anything the old
    primary held. Split-brain safety rests on fencing, not on the
    failure detector being right: workers refuse stale-epoch requests
    with [fenced], and a deposed coordinator stops journaling at the
    first refusal — the commit gate runs inside the journal lock, so
    zero records land after deposition. *)

type config = {
  workers : Server.addr list;
  dispatchers : int;  (** coordinator dispatch domains *)
  seed : int;
  deadline_s : float;  (** per-cell allowance sent with each request *)
  timeout_s : float;  (** per-attempt socket timeout (connect + I/O) *)
  max_attempts : int;  (** tries per cell across the fleet *)
  backoff : Netsim.Backoff.t;  (** retry delays, per-cell jitter streams *)
  down_after : int;  (** consecutive failures before a worker is down *)
  heartbeat_s : float;  (** liveness probe period; [0.] disables *)
  steal_after_s : float;  (** in-flight age before a cell is stolen *)
  verify_relocated : bool;  (** DRUP re-check of non-owner verdicts *)
  ring_points : int;  (** virtual nodes per worker on the ring *)
  cl_journal : string option;
  cl_resume : bool;
  cl_flush_every : int;  (** journal group-commit batch *)
  epoch : int;
      (** leadership epoch; [0] = unfenced legacy mode. Positive:
          workers are fenced to it before dispatch, every request and
          journal record carries it, and a [fenced] reply deposes the
          run. *)
  repl_listen : Server.addr option;
      (** serve journal replication pulls here (requires
          [cl_journal]) *)
  cl_throttle_s : float;
      (** sleep before dispatching each cell; [0.] = off. For failover
          tests and benches that must land a kill or partition
          mid-sweep deterministically — not for production. *)
}

val default_config : Server.addr list -> config
(** 4 dispatchers, seed 1, 30 s cell deadline, 35 s socket timeout,
    5 attempts, 20 ms–0.5 s backoff, down after 2, 0.5 s heartbeat,
    steal after 5 s, relocation re-check on, 64 ring points, no
    journal, epoch 0, no replication, no throttle. *)

type report = {
  sweep : Core.Experiments.sweep_report;
      (** render with {!Core.Experiments.render_sweep} — byte-identical
          to the single-process sweep when every cell was decided *)
  cluster_stats : (string * int) list;
      (** dispatch/failover/steal/relocation/heartbeat/fenced counters *)
  worker_up : bool list;  (** final liveness, in [workers] order *)
  cl_epoch : int;
      (** the epoch dispatched under, or the deposing epoch if higher *)
  deposed : bool;
      (** a worker refused this run's epoch as stale: a newer
          coordinator owns the fleet. Dispatch and journaling stopped at
          the first refusal; the report is partial past it. *)
}

val run_sweep :
  ?stop:(unit -> bool) ->
  ?scopes:(string * Core.Mca_model.scope_spec) list ->
  config -> report
(** Runs the full policy-matrix sweep through the fleet. [stop]
    (default {!Parallel.Supervise.draining}, so the standard
    SIGINT/SIGTERM drain handlers work unchanged) drains the cluster:
    in-flight cells finish, unstarted cells come back [Skipped] and the
    report is partial. Raises [Invalid_argument] on an empty worker
    list, non-positive dispatchers/attempts, or [cl_resume] without
    [cl_journal]. *)

val fleet_stats :
  ?timeout_s:float ->
  Server.addr list -> (int * ((string * int) list, string) result) list
(** One [stats] probe per worker, indexed — the [--stats] mode of the
    CLI. *)

(** {2 Epoch durability}

    A coordinator must never reuse an epoch it already spent — a
    restarted primary at an old epoch would not be refused by workers
    that never saw the successor. These helpers maintain the durable
    floor: record every epoch before running at it, read the floor back
    at startup and start strictly above it. Any journal file works,
    including the coordinator journal itself (epochs appear both as
    [epoch] marker records and as [|epoch=N] stamps). *)

val latest_epoch : string -> int
(** Highest epoch recorded anywhere in the journal at [path]; [0] for a
    missing or epoch-free journal. *)

val commit_epoch : string -> seed:int -> epoch:int -> unit
(** Durably appends an [epoch] marker record to the journal at [path]
    (created if missing), fsync'd before return. *)

(** {2 Warm standby} *)

type standby_config = {
  sb_cluster : config;
      (** the configuration the takeover sweep runs with.
          [cl_journal] is the {e replica} journal path (required):
          replication fills it, takeover resumes from it. [epoch] here
          is a {e floor} of epochs known spent (e.g. from
          {!latest_epoch}), not an epoch to run at — the takeover epoch
          is one past the highest epoch seen anywhere. *)
  sb_source : Server.addr;  (** the primary's [repl_listen] address *)
  sb_poll_s : float;  (** delay between replication pulls *)
  sb_lease_s : float;
      (** wall clock since the last successful pull before takeover *)
  sb_down_after : int;
      (** consecutive failed pulls before takeover (both conditions
          must hold — lease {e and} failure evidence) *)
}

val default_standby : source:Server.addr -> config -> standby_config
(** 50 ms poll, 1 s lease, 3 consecutive failures. *)

type standby_outcome =
  | Took_over of {
      takeover_epoch : int;
      replicated : int;  (** records in the replica at takeover *)
      takeover_latency_s : float;
          (** last successful pull → takeover decision *)
      report : report;  (** the completed (or again-interrupted) sweep *)
    }
  | Standby_drained of { replicated : int }  (** [stop] fired first *)

val run_standby :
  ?stop:(unit -> bool) ->
  ?scopes:(string * Core.Mca_model.scope_spec) list ->
  ?on_replicated:(int -> unit) ->
  standby_config -> standby_outcome
(** Tails the primary's journal into the replica (pull loop, verified
    frames, append with [flush_every=1]) until either [stop] fires or
    the lease expires on hard evidence — [sb_down_after] consecutive
    failed pulls {e and} [sb_lease_s] elapsed since the last good one.
    A merely slow primary cannot trigger takeover; a partitioned-but-
    alive one can, and split-brain safety then rests on epoch fencing,
    not on the detector. On takeover, runs {!run_sweep} with
    [cl_resume] from the replica at the fresh epoch and returns its
    report. [on_replicated] is called with the replica record count
    after every successful pull (test synchronization hook). Raises
    [Invalid_argument] without [sb_cluster.cl_journal], or on
    non-positive [sb_poll_s]/[sb_down_after]. *)
