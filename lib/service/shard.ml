(* Consistent-hash ring with virtual nodes. Placement must be a pure
   function of (worker count, points, key) — the coordinator, its tests
   and any future peer must agree on who owns a cell without talking —
   so the hash is a fixed 64-bit FNV-1a, not Hashtbl.hash.

   Raw FNV-1a is not enough on its own: ring point names differ only in
   a digit near the end of the string, and the last few FNV rounds
   barely touch the high bits, so every point of one worker lands on
   one tight arc and the ring degenerates into n contiguous segments
   (a real skew: worker 1 of 3 owned 0% of the key space). The murmur3
   avalanche finalizer after the loop spreads those last-byte
   differences over all 64 bits. *)

let avalanche h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

let hash64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  avalanche !h

type t = {
  ring : (int64 * int) array;  (** (point hash, worker), sorted unsigned *)
  n : int;
}

let make ?(points = 64) n =
  if n < 1 then invalid_arg "Shard.make: no workers";
  if points < 1 then invalid_arg "Shard.make: points < 1";
  let ring =
    Array.init (n * points) (fun k ->
        let w = k / points and p = k mod points in
        (hash64 (Printf.sprintf "worker-%d/point-%d" w p), w))
  in
  Array.sort
    (fun (a, wa) (b, wb) ->
      match Int64.unsigned_compare a b with 0 -> compare wa wb | c -> c)
    ring;
  { ring; n }

let workers t = t.n

(* index of the first ring point clockwise of [h] (wrapping) *)
let successor t h =
  let len = Array.length t.ring in
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.ring.(mid)) h < 0 then lo := mid + 1
    else hi := mid
  done;
  if !lo = len then 0 else !lo

let owner t key = snd t.ring.(successor t (hash64 key))

let route t key =
  let len = Array.length t.ring in
  let start = successor t (hash64 key) in
  let seen = Array.make t.n false in
  let order = ref [] and found = ref 0 and i = ref 0 in
  (* every worker has ring points, so one full revolution finds them all *)
  while !found < t.n && !i < len do
    let w = snd t.ring.((start + !i) mod len) in
    if not seen.(w) then begin
      seen.(w) <- true;
      order := w :: !order;
      incr found
    end;
    incr i
  done;
  List.rev !order
