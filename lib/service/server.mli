(** The overload-safe verification daemon.

    Serves {!Wire} [check] requests — one policy-matrix cell each, the
    same verdict vocabulary as [mca_check --sweep] — over a Unix or TCP
    socket, one newline-framed request per connection. The [submit]
    verb additionally accepts a tenant-supplied mini-Alloy spec body
    (header line + declared byte count), runs it through the
    {!Speccheck} pipeline under per-tenant {!Tenant} admission, and
    answers with a verdict, a typed span-carrying diagnostic, a
    [quota] refusal or a [shed] — never a raw exception, never a hang:
    spec size is capped at the framing layer, scope is capped by
    {!Alloylite.Compile.universe_estimate} before translation, and the
    solve runs under the same deadline/budget regime as [check].
    Decided submit verdicts are content-addressed — journaled as
    [spec|1|…] records next to the sweep's cells and replayed
    byte-identically on resubmission.

    Overload behaviour is explicit, never emergent:

    - {b admission control}: a request is admitted only when
      {!Parallel.Bqueue.try_push} onto the bounded queue succeeds;
      otherwise the client gets a [shed] reply immediately. The
      acceptor never blocks — not on the queue (non-blocking push), not
      on clients (non-blocking sockets under [select], slow readers
      dropped after [io_deadline]).
    - {b deadline propagation}: every admitted request carries an
      absolute deadline ([default_deadline] unless the client asked,
      capped by [max_deadline]) threaded into the backends as a [?stop]
      hook plus per-rung {!Netsim.Budget}s.
    - {b graceful degradation}: the SAT column is answered by the
      {!Ladder} (CDCL → DPLL → explicit → [UNKNOWN]), with a per-rung
      {!Breaker} so a timing-out backend is skipped while it cools off.
    - {b drain on stop}: {!stop} (the SIGTERM handler's one call —
      it only flips an [Atomic]) stops admissions; queued requests
      complete, are answered and journaled, then workers exit and
      {!join} returns. A restart — or [mca_check --sweep --resume] —
      picks the completed verdicts up from the journal.

    With [journal = Some path] the server keeps a CRC-framed write-ahead
    journal of every {e decided} cell ({!Core.Experiments.cell_record}
    format) and serves repeat requests from it ([rung=journal],
    [cached=true]); [Undecided] answers are never journaled — they
    describe one moment's load, not the cell. *)

type addr = Unix_path of string | Tcp of string * int

val sockaddr_of : addr -> Unix.sockaddr
val pp_addr : Format.formatter -> addr -> unit

type config = {
  addr : addr;
  jobs : int;  (** worker domains *)
  queue_cap : int;  (** admission watermark: a full queue sheds *)
  default_deadline : float;  (** seconds per request when none given *)
  max_deadline : float;  (** cap on client-requested deadlines *)
  io_deadline : float;  (** client socket read/write allowance *)
  seed : int;  (** cell identity seed, as in [mca_check --sweep] *)
  journal : string option;
  trip_after : int;  (** breaker: consecutive timeouts before opening *)
  breaker_base_s : float;
  breaker_cap_s : float;
  max_spec_bytes : int;
      (** [submit] body cap; must not exceed {!Wire.max_spec_bytes}.
          An oversized declaration is refused with a typed [Cap]
          diagnostic before any body byte is read. *)
  max_atoms : int;  (** submit universe-estimate ceiling (pre-translation) *)
  max_tuples : int;  (** submit field-tuple ceiling (pre-translation) *)
  quota_rate : float;  (** per-tenant sustained submissions per second *)
  quota_burst : float;  (** per-tenant burst allowance *)
}

val default_config : addr -> config
(** 2 workers, queue of 8, 30 s default / 120 s max deadline, 5 s I/O
    allowance, seed 1, no journal, breakers trip after 3 with 0.5–30 s
    cooldowns; submit caps and quotas from {!Speccheck.default_caps}
    and {!Tenant.default_config}. *)

type t

val start : config -> t
(** Binds, listens and spawns the acceptor and worker domains. Ignores
    SIGPIPE (a dropped client must not kill the server). Raises
    [Invalid_argument] for non-positive [jobs]/[queue_cap] and
    [Unix.Unix_error] when the address cannot be bound. *)

val stop : ?abort:bool -> t -> unit
(** Requests a graceful drain. Only flips atomics — safe to call from a
    signal handler. With [abort = true], in-flight backends are also
    cancelled through their [stop] hooks (they answer [UNKNOWN]
    "cancelled" and are not journaled). *)

val join : t -> unit
(** Blocks until {!stop} has been called and the drain has finished:
    backlog served, domains joined, journal closed, socket unlinked. *)

val run : config -> unit
(** [start] + [join] — the daemon main loop. Install signal handlers
    calling {!stop} before [run]. *)

val stats : t -> (string * int) list
(** The live counters of the [stats] wire reply: [conns], [requests],
    [admitted], [shed], [errors], [served], [cached], [degraded],
    [drained], [submits], [quota], [spec_errors], [spec_cached],
    [fenced] (checks refused for a stale coordinator epoch), [epoch]
    (the fencing watermark), [tenants], [depth], [cap], [jobs], one
    [breaker_*_open] flag per ladder rung, and one
    [tenant.<name>.served]/[.refused]/[.cached] triple per tracked
    tenant ({!Tenant.stats}). *)

val address : t -> addr
