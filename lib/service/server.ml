(* The verification daemon: a select-based acceptor feeding a bounded
   request queue, worker domains running policy-matrix cells through the
   degradation ladder, and a write-ahead journal that doubles as the
   verdict cache.

   The overload contract, in code:
   - the acceptor never blocks on the queue: admission is
     [Bqueue.try_push], and [false] is answered with an explicit [shed]
     reply (never a hang, never a crash);
   - the acceptor never blocks on a client either: sockets are
     non-blocking, request lines are assembled incrementally under
     [select], and a client that stalls past [io_deadline] is dropped;
   - every admitted request carries an absolute deadline; workers thread
     it into the backends as a [?stop] hook plus per-rung
     [Netsim.Budget]s, so a hard cell degrades to [UNKNOWN] instead of
     wedging a worker;
   - [stop] (the SIGTERM path) drains: the listener closes, queued
     requests complete and are journaled, then workers exit — a
     restarted server (or [mca_check --sweep --resume]) picks the
     verdicts up from the journal. *)

type addr = Unix_path of string | Tcp of string * int

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let pp_addr ppf = function
  | Unix_path p -> Format.fprintf ppf "unix:%s" p
  | Tcp (host, port) -> Format.fprintf ppf "tcp:%s:%d" host port

type config = {
  addr : addr;
  jobs : int;  (** worker domains *)
  queue_cap : int;  (** admission watermark: depth beyond this sheds *)
  default_deadline : float;  (** per-request seconds when none given *)
  max_deadline : float;  (** cap on client-requested deadlines *)
  io_deadline : float;  (** client socket read/write allowance *)
  seed : int;  (** cell identity seed, as in [mca_check --sweep] *)
  journal : string option;
  trip_after : int;  (** breaker: consecutive timeouts before opening *)
  breaker_base_s : float;
  breaker_cap_s : float;
  max_spec_bytes : int;  (** submit body cap (≤ {!Wire.max_spec_bytes}) *)
  max_atoms : int;  (** submit universe-estimate ceiling *)
  max_tuples : int;  (** submit field-tuple ceiling *)
  quota_rate : float;  (** per-tenant submissions per second *)
  quota_burst : float;  (** per-tenant burst allowance *)
}

let default_config addr =
  {
    addr;
    jobs = 2;
    queue_cap = 8;
    default_deadline = 30.0;
    max_deadline = 120.0;
    io_deadline = 5.0;
    seed = 1;
    journal = None;
    trip_after = 3;
    breaker_base_s = 0.5;
    breaker_cap_s = 30.0;
    max_spec_bytes = Speccheck.default_caps.Speccheck.max_bytes;
    max_atoms = Speccheck.default_caps.Speccheck.max_atoms;
    max_tuples = Speccheck.default_caps.Speccheck.max_tuples;
    quota_rate = Tenant.default_config.Tenant.rate;
    quota_burst = Tenant.default_config.Tenant.burst;
  }

type work =
  | Cell of Wire.request
  | Spec of Wire.submit_header * string  (** header plus the body text *)

type job = { fd : Unix.file_descr; work : work }

let work_id = function
  | Cell req -> req.Wire.id
  | Spec (h, _) -> h.Wire.sub_id

type counters = {
  conns : int Atomic.t;  (** connections accepted *)
  requests : int Atomic.t;  (** well-formed check requests *)
  admitted : int Atomic.t;
  shed : int Atomic.t;
  errors : int Atomic.t;  (** malformed/refused requests *)
  served : int Atomic.t;  (** verdict replies written *)
  cached : int Atomic.t;  (** served from the journal cache *)
  degraded : int Atomic.t;  (** answered below the CDCL rung *)
  drained : int Atomic.t;  (** requests completed during drain *)
  submits : int Atomic.t;  (** well-formed submit headers *)
  quota : int Atomic.t;  (** submissions refused by tenant admission *)
  spec_errors : int Atomic.t;  (** typed spec rejections (Bad_spec) *)
  spec_cached : int Atomic.t;  (** submits served from the verdict cache *)
  fenced : int Atomic.t;  (** requests refused for a stale epoch *)
}

let new_counters () =
  {
    conns = Atomic.make 0;
    requests = Atomic.make 0;
    admitted = Atomic.make 0;
    shed = Atomic.make 0;
    errors = Atomic.make 0;
    served = Atomic.make 0;
    cached = Atomic.make 0;
    degraded = Atomic.make 0;
    drained = Atomic.make 0;
    submits = Atomic.make 0;
    quota = Atomic.make 0;
    spec_errors = Atomic.make 0;
    spec_cached = Atomic.make 0;
    fenced = Atomic.make 0;
  }

type t = {
  cfg : config;
  queue : job Parallel.Bqueue.t;
  stopping : bool Atomic.t;  (** drain requested: set from signal handlers *)
  aborting : bool Atomic.t;  (** hard stop: cancel in-flight work *)
  counters : counters;
  ladder : Ladder.t;
  cache : (int * string * string, Core.Experiments.sweep_cell) Hashtbl.t;
  cache_lock : Mutex.t;
  shared_cache :
    (Core.Mca_model.scope_spec * int, Core.Mca_model.shared) Hashtbl.t;
      (** one scope-wide translation per (scope, target); policy cells of
          the same scope solve it under selector assumptions instead of
          rebuilding the model per request *)
  shared_lock : Mutex.t;
  tenants : Tenant.t;
  spec_cache : (string * string * bool, Speccheck.record) Hashtbl.t;
      (** content-addressed submit verdicts, keyed on (spec digest,
          requested command, certify); loaded from and appended to the
          same journal as the sweep cells *)
  spec_lock : Mutex.t;
  journal_w : Parallel.Journal.writer option;
  epoch : int Atomic.t;
      (** highest coordinator epoch seen — the fencing watermark. Raised
          monotonically by [fence] verbs and epoch-stamped checks; a
          check below it is refused before any work or journaling. *)
  listen_fd : Unix.file_descr;
  mutable domains : unit Domain.t list;
}

(* monotonic max-update; returns the watermark after the raise *)
let rec raise_epoch a e =
  let cur = Atomic.get a in
  if e <= cur then cur
  else if Atomic.compare_and_set a cur e then e
  else raise_epoch a e

(* ---- non-blocking, deadline-bounded socket I/O -------------------- *)

let rec select_retry rd wr deadline =
  let now = Unix.gettimeofday () in
  let t = Float.max 0.0 (deadline -. now) in
  match Unix.select rd wr [] t with
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if Unix.gettimeofday () >= deadline then ([], [], [])
      else select_retry rd wr deadline
  | r -> r

(* Best-effort bounded write of [s ^ "\n"]; never raises, never blocks
   past [deadline]. *)
let send_line fd ~deadline s =
  let b = Bytes.of_string (s ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd b off (n - off) with
      | 0 -> false
      | k -> go (off + k)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
          match select_retry [] [ fd ] deadline with
          | _, [ _ ], _ -> go off
          | _ -> false)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> false
  in
  go 0

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- the journal-backed verdict cache ----------------------------- *)

let cache_key ~seed ~policy ~scope_tag = (seed, policy, scope_tag)

let spec_cache_key ~digest ~cmd ~certify =
  (digest, Option.value cmd ~default:"", certify)

let load_cache cfg cache spec_cache =
  match cfg.journal with
  | None -> None
  | Some path ->
      (* recover: truncate a torn tail, then trust only digest-valid
         records — the PR 4 resume contract. Cell and spec records
         share the file; each codec skips the other's lines. *)
      let { Parallel.Journal.entries; _ } = Parallel.Journal.recover path in
      List.iter
        (fun line ->
          match Core.Experiments.cell_of_record line with
          | Some (seed, cell) ->
              Hashtbl.replace cache
                (cache_key ~seed ~policy:cell.Core.Experiments.policy_label
                   ~scope_tag:cell.Core.Experiments.scope_tag)
                cell
          | None -> (
              match Speccheck.spec_of_record line with
              | Some r ->
                  Hashtbl.replace spec_cache
                    ( r.Speccheck.rec_digest,
                      r.Speccheck.rec_req,
                      r.Speccheck.rec_certify )
                    r
              | None -> ()))
        entries;
      Some (Parallel.Journal.open_append path)

(* Only decided cells are cacheable: an [Undecided] answer reflects the
   load/deadline of one moment, not the cell, and must never be replayed
   as if it were a verdict. *)
let cell_decided (c : Core.Experiments.sweep_cell) =
  match (c.sat_verdict, c.exhaustive) with
  | Core.Experiments.Undecided _, _ | _, Core.Experiments.Undecided _ -> false
  | _ -> true

(* ---- the shared-translation cache ---------------------------------- *)

(* Bounded so arbitrary client-chosen scopes cannot grow it without
   limit; a full reset on overflow is crude but keeps the common case
   (few distinct scopes, hammered repeatedly) at one translation each. *)
let max_shared_cache = 8

let shared_for t scope target =
  Mutex.lock t.shared_lock;
  let hit = Hashtbl.find_opt t.shared_cache (scope, target) in
  Mutex.unlock t.shared_lock;
  match hit with
  | Some sh -> sh
  | None -> (
      (* build outside the lock: translation takes long enough that
         serializing workers on it would defeat the point; a racing
         duplicate build is wasted work, not a bug *)
      let sh =
        Core.Mca_model.build_shared ~target Core.Mca_model.Efficient scope
      in
      Mutex.lock t.shared_lock;
      match Hashtbl.find_opt t.shared_cache (scope, target) with
      | Some first ->
          Mutex.unlock t.shared_lock;
          first
      | None ->
          if Hashtbl.length t.shared_cache >= max_shared_cache then
            Hashtbl.reset t.shared_cache;
          Hashtbl.replace t.shared_cache (scope, target) sh;
          Mutex.unlock t.shared_lock;
          sh)

(* ---- one request, end to end -------------------------------------- *)

let stats_of t =
  let c = t.counters in
  let breaker_open rung =
    match
      Breaker.state (Ladder.breaker t.ladder rung) ~now:(Unix.gettimeofday ())
    with
    | Breaker.Closed -> 0
    | Breaker.Open_until _ | Breaker.Half_open -> 1
  in
  [
    ("conns", Atomic.get c.conns);
    ("requests", Atomic.get c.requests);
    ("admitted", Atomic.get c.admitted);
    ("shed", Atomic.get c.shed);
    ("errors", Atomic.get c.errors);
    ("served", Atomic.get c.served);
    ("cached", Atomic.get c.cached);
    ("degraded", Atomic.get c.degraded);
    ("drained", Atomic.get c.drained);
    ("submits", Atomic.get c.submits);
    ("quota", Atomic.get c.quota);
    ("spec_errors", Atomic.get c.spec_errors);
    ("spec_cached", Atomic.get c.spec_cached);
    ("fenced", Atomic.get c.fenced);
    ("epoch", Atomic.get t.epoch);
    ("tenants", Tenant.active t.tenants);
    ("depth", Parallel.Bqueue.length t.queue);
    ("cap", t.cfg.queue_cap);
    ("jobs", t.cfg.jobs);
    ("breaker_cdcl_open", breaker_open Ladder.Cdcl);
    ("breaker_dpll_open", breaker_open Ladder.Dpll);
    ("breaker_explicit_open", breaker_open Ladder.Explicit);
  ]
  @ Tenant.stats t.tenants

let compute_cell t (req : Wire.request) ~stop ~abs_deadline =
  let scope_tag, scope = Wire.scope_of_request req in
  match Core.Experiments.lookup_policy req.Wire.policy with
  | None -> Error (Printf.sprintf "unknown policy %S" req.Wire.policy)
  | Some (p, mp) ->
      let t0 = Unix.gettimeofday () in
      let cfg =
        Core.Experiments.cell_config ~seed:req.Wire.seed
          ~policy_label:req.Wire.policy ~scope_tag p scope
      in
      let remaining_until frac =
        let now = Unix.gettimeofday () in
        let rem = Float.max 0.0 (abs_deadline -. now) in
        Netsim.Budget.until ~deadline:(now +. (rem *. frac))
      in
      let sim_ok =
        match
          Mca.Protocol.run_sync ~max_rounds:200 ~budget:(remaining_until 0.25)
            cfg
        with
        | Mca.Protocol.Converged _ -> true
        | _ -> false
      in
      (* computed at most once, shared between the ladder's bottom rung
         and the reply's exhaustive column *)
      let exhaustive =
        lazy
          (match Checker.Explore.run ~stop ~budget:(remaining_until 1.0) cfg with
          | Checker.Explore.Converges _ -> Core.Experiments.Holds
          | Checker.Explore.Unknown { reason; _ } ->
              Core.Experiments.Undecided reason
          | Checker.Explore.Nonconvergence _ | Checker.Explore.Bad_terminal _ ->
              Core.Experiments.Violated)
      in
      let mp =
        { mp with
          Core.Mca_model.target =
            min mp.Core.Mca_model.target scope.Core.Mca_model.vnodes }
      in
      let backend =
        Ladder.Shared_translation
          (shared_for t scope mp.Core.Mca_model.target, mp)
      in
      (* the ladder's deadline split: CDCL gets half the remaining
         request time, DPLL half of what is left after that, the
         explicit checker the rest *)
      let budget_for = function
        | Ladder.Cdcl -> remaining_until 0.5
        | Ladder.Dpll -> remaining_until 0.5
        | Ladder.Explicit -> remaining_until 1.0
      in
      let answer =
        Ladder.check_consensus ~stop ~budget_for ~backend
          ~exhaustive:(fun () -> Lazy.force exhaustive)
          t.ladder
      in
      let cell =
        {
          Core.Experiments.policy_label = req.Wire.policy;
          scope_tag;
          sat_verdict = answer.Ladder.verdict;
          sim_ok;
          exhaustive = Lazy.force exhaustive;
          cell_seconds = Unix.gettimeofday () -. t0;
          origin = Core.Experiments.Computed;
        }
      in
      Ok (cell, answer)

let serve_check t fd (req : Wire.request) =
  let c = t.counters in
  let now0 = Unix.gettimeofday () in
  let deadline_s =
    Float.min t.cfg.max_deadline
      (Option.value req.Wire.deadline_s ~default:t.cfg.default_deadline)
  in
  let abs_deadline = now0 +. deadline_s in
  let io_deadline () = Unix.gettimeofday () +. t.cfg.io_deadline in
  let reply resp =
    (* count before the write lands: a client that reads its reply and
       immediately asks for stats must see itself in the counter *)
    Atomic.incr c.served;
    if not (send_line fd ~deadline:(io_deadline ()) (Wire.render_response resp))
    then Atomic.decr c.served
  in
  let scope_tag, _ = Wire.scope_of_request req in
  let key =
    cache_key ~seed:req.Wire.seed ~policy:req.Wire.policy ~scope_tag
  in
  (* the journal is keyed by (seed, policy, scope tag) with the sweep's
     fixed bid-level count; other values-scopes bypass the cache *)
  let cacheable = req.Wire.values = 6 in
  let cached_cell =
    if cacheable then begin
      Mutex.lock t.cache_lock;
      let r = Hashtbl.find_opt t.cache key in
      Mutex.unlock t.cache_lock;
      r
    end
    else None
  in
  match cached_cell with
  | Some cell ->
      Atomic.incr c.cached;
      reply
        (Wire.Verdict
           {
             Wire.req_id = req.Wire.id;
             sat = cell.Core.Experiments.sat_verdict;
             exhaustive = cell.Core.Experiments.exhaustive;
             sim_ok = cell.Core.Experiments.sim_ok;
             rung = "journal";
             cached = true;
             secs = Unix.gettimeofday () -. now0;
           })
  | None -> (
      let stop () =
        Atomic.get t.aborting || Unix.gettimeofday () >= abs_deadline
      in
      match compute_cell t req ~stop ~abs_deadline with
      | Error msg ->
          Atomic.incr c.errors;
          reply (Wire.Error { req_id = req.Wire.id; msg })
      | Ok (cell, answer) ->
          if answer.Ladder.degraded then Atomic.incr c.degraded;
          if Atomic.get t.stopping then Atomic.incr c.drained;
          if cacheable && cell_decided cell then begin
            (match t.journal_w with
            | Some w ->
                Parallel.Journal.append w
                  (Core.Experiments.cell_record ~seed:req.Wire.seed cell)
            | None -> ());
            Mutex.lock t.cache_lock;
            Hashtbl.replace t.cache key cell;
            Mutex.unlock t.cache_lock
          end;
          reply
            (Wire.Verdict
               {
                 Wire.req_id = req.Wire.id;
                 sat = cell.Core.Experiments.sat_verdict;
                 exhaustive = cell.Core.Experiments.exhaustive;
                 sim_ok = cell.Core.Experiments.sim_ok;
                 rung = answer.Ladder.rung;
                 cached = false;
                 secs = cell.Core.Experiments.cell_seconds;
               }))

let serve_submit t fd (h : Wire.submit_header) spec =
  let c = t.counters in
  let now0 = Unix.gettimeofday () in
  let deadline_s =
    Float.min t.cfg.max_deadline
      (Option.value h.Wire.sub_deadline_s ~default:t.cfg.default_deadline)
  in
  let abs_deadline = now0 +. deadline_s in
  let reply resp =
    Atomic.incr c.served;
    if
      not
        (send_line fd
           ~deadline:(Unix.gettimeofday () +. t.cfg.io_deadline)
           (Wire.render_response resp))
    then Atomic.decr c.served
  in
  let digest = Speccheck.digest spec in
  let key = spec_cache_key ~digest ~cmd:h.Wire.sub_cmd ~certify:h.Wire.certify in
  let hit =
    Mutex.lock t.spec_lock;
    let r = Hashtbl.find_opt t.spec_cache key in
    Mutex.unlock t.spec_lock;
    r
  in
  match hit with
  | Some r ->
      Atomic.incr c.spec_cached;
      Tenant.note_served t.tenants h.Wire.tenant;
      Tenant.note_cached t.tenants h.Wire.tenant;
      reply
        (Wire.Spec
           {
             Wire.spec_id = h.Wire.sub_id;
             digest;
             command = r.Speccheck.rec_cmd;
             spec_verdict = r.Speccheck.rec_verdict;
             certified = r.Speccheck.rec_certify;
             spec_cached = true;
             spec_secs = r.Speccheck.rec_secs;
           })
  | None -> (
      let stop () =
        Atomic.get t.aborting || Unix.gettimeofday () >= abs_deadline
      in
      let caps =
        {
          Speccheck.max_bytes = t.cfg.max_spec_bytes;
          max_atoms = t.cfg.max_atoms;
          max_tuples = t.cfg.max_tuples;
        }
      in
      match
        Speccheck.analyze ~caps ~certify:h.Wire.certify ?cmd:h.Wire.sub_cmd
          ~stop ~deadline:abs_deadline spec
      with
      | Result.Error d ->
          Atomic.incr c.spec_errors;
          Tenant.note_served t.tenants h.Wire.tenant;
          reply (Wire.Bad_spec { req_id = h.Wire.sub_id; diag = d })
      | Ok r ->
          let decided =
            match r.Speccheck.verdict with
            | Wire.Spec_unknown _ -> false
            | _ -> true
          in
          (* cache only verdicts that can be replayed verbatim: decided,
             and — when certification was asked for — actually certified *)
          if decided && ((not h.Wire.certify) || r.Speccheck.certified) then begin
            let record =
              {
                Speccheck.rec_digest = digest;
                rec_req = Option.value h.Wire.sub_cmd ~default:"";
                rec_cmd = r.Speccheck.command;
                rec_certify = r.Speccheck.certified;
                rec_verdict = r.Speccheck.verdict;
                rec_secs = r.Speccheck.secs;
              }
            in
            (match t.journal_w with
            | Some w -> Parallel.Journal.append w (Speccheck.spec_record record)
            | None -> ());
            Mutex.lock t.spec_lock;
            Hashtbl.replace t.spec_cache key record;
            Mutex.unlock t.spec_lock
          end;
          if Atomic.get t.stopping then Atomic.incr c.drained;
          Tenant.note_served t.tenants h.Wire.tenant;
          reply
            (Wire.Spec
               {
                 Wire.spec_id = h.Wire.sub_id;
                 digest;
                 command = r.Speccheck.command;
                 spec_verdict = r.Speccheck.verdict;
                 certified = r.Speccheck.certified;
                 spec_cached = false;
                 spec_secs = r.Speccheck.secs;
               }))

let worker t =
  let serve job =
    match job.work with
    | Cell req -> serve_check t job.fd req
    | Spec (h, spec) ->
        (* the acceptor took the tenant's queue slot at admission; give
           it back whatever happens to the job *)
        Fun.protect
          ~finally:(fun () -> Tenant.release t.tenants h.Wire.tenant)
          (fun () -> serve_submit t job.fd h spec)
  in
  let rec loop () =
    match
      Parallel.Bqueue.pop_deadline t.queue
        ~deadline:(Unix.gettimeofday () +. 0.25)
    with
    | Parallel.Bqueue.Closed -> ()
    | Parallel.Bqueue.Timeout -> loop ()
    | Parallel.Bqueue.Item job ->
        (try serve job
         with e ->
           Atomic.incr t.counters.errors;
           ignore
             (send_line job.fd
                ~deadline:(Unix.gettimeofday () +. t.cfg.io_deadline)
                (Wire.render_response
                   (Wire.Error
                      { req_id = work_id job.work;
                        msg = "internal: " ^ Printexc.to_string e }))));
        close_quiet job.fd;
        loop ()
  in
  loop ()

(* ---- the acceptor -------------------------------------------------- *)

let max_line = 65536

type pmode =
  | Header  (** assembling the one-line request *)
  | Body of Wire.submit_header  (** assembling a submit body *)

type pending = {
  pfd : Unix.file_descr;
  buf : Buffer.t;
  expires : float;  (** the slow-loris cutoff (header and body alike) *)
  mutable mode : pmode;
}

let shed_reply t req_id =
  Wire.Shed
    {
      req_id;
      depth = Parallel.Bqueue.length t.queue;
      capacity = t.cfg.queue_cap;
    }

(* A complete submit (header + body) arrived: tenant admission, then
   the queue. The order matters — a Granted decision takes a queue
   slot that must be released, so the cheap stopping check runs first
   and a failed push gives the slot straight back. *)
let handle_submit t fd h spec =
  let c = t.counters in
  let io_deadline = Unix.gettimeofday () +. t.cfg.io_deadline in
  let refuse resp =
    ignore (send_line fd ~deadline:io_deadline (Wire.render_response resp));
    close_quiet fd
  in
  if Atomic.get t.stopping then begin
    Atomic.incr c.shed;
    refuse (shed_reply t h.Wire.sub_id)
  end
  else
    match
      Tenant.admit t.tenants ~now:(Unix.gettimeofday ())
        ~queue_cap:t.cfg.queue_cap h.Wire.tenant
    with
    | Tenant.Quota { retry_after_s } ->
        Atomic.incr c.quota;
        refuse
          (Wire.Quota
             { req_id = h.Wire.sub_id; tenant = h.Wire.tenant; retry_after_s })
    | Tenant.Granted ->
        if Parallel.Bqueue.try_push t.queue { fd; work = Spec (h, spec) } then
          Atomic.incr c.admitted
        else begin
          Tenant.release t.tenants h.Wire.tenant;
          Atomic.incr c.shed;
          refuse (shed_reply t h.Wire.sub_id)
        end

type line_action =
  | Line_done  (** socket closed or handed off to a worker *)
  | Await_body of Wire.submit_header  (** keep reading: a body follows *)

let handle_line t fd line =
  let c = t.counters in
  let io_deadline = Unix.gettimeofday () +. t.cfg.io_deadline in
  let refuse resp =
    ignore (send_line fd ~deadline:io_deadline (Wire.render_response resp));
    close_quiet fd
  in
  match Wire.parse_incoming line with
  | Result.Error msg ->
      Atomic.incr c.errors;
      refuse (Wire.Error { req_id = ""; msg });
      Line_done
  | Ok Wire.Get_stats ->
      refuse (Wire.Stats (stats_of t));
      Line_done
  | Ok (Wire.Fence { fence_id; fence_epoch }) ->
      (* a coordinator announcing itself: raise the watermark and echo
         it back. Answered inline — a fence must not queue behind work
         dispatched by the very coordinator it is deposing. *)
      let watermark = raise_epoch t.epoch fence_epoch in
      refuse (Wire.Fenced { req_id = fence_id; fenced_epoch = watermark });
      Line_done
  | Ok (Wire.Repl_hello { repl_id; _ }) ->
      (* workers are not replication sources; only a coordinator's
         journal publisher answers this verb *)
      Atomic.incr c.errors;
      refuse (Wire.Error { req_id = repl_id; msg = "not a replication source" });
      Line_done
  | Ok (Wire.Submit h) ->
      Atomic.incr c.submits;
      if h.Wire.spec_bytes > t.cfg.max_spec_bytes then begin
        (* refused before a single body byte is buffered; the client
           learns the cap from the typed diagnostic *)
        Atomic.incr c.spec_errors;
        refuse
          (Wire.Bad_spec
             {
               req_id = h.Wire.sub_id;
               diag =
                 {
                   Alloylite.Diag.stage = Alloylite.Diag.Cap;
                   span = Alloylite.Diag.point ~line:1 ~col:1;
                   msg =
                     Printf.sprintf "spec is %d bytes, cap is %d"
                       h.Wire.spec_bytes t.cfg.max_spec_bytes;
                   hint = Some "split the model or inline fewer paragraphs";
                 };
             });
        Line_done
      end
      else Await_body h
  | Ok (Wire.Check req) ->
      Atomic.incr c.requests;
      let stale_epoch =
        (* admission-time fencing: a request from a deposed coordinator
           is refused before it can reach a worker or the journal. An
           epoch at or above the watermark raises it (the check itself
           announces the coordinator), and epoch-less legacy clients
           are never fenced. *)
        match req.Wire.epoch with
        | None -> None
        | Some e ->
            let watermark = raise_epoch t.epoch e in
            if e < watermark then Some watermark else None
      in
      (match stale_epoch with
       | Some watermark ->
           Atomic.incr c.fenced;
           refuse (Wire.Fenced { req_id = req.Wire.id; fenced_epoch = watermark })
       | None ->
      if Core.Experiments.lookup_policy req.Wire.policy = None then begin
         Atomic.incr c.errors;
         refuse
           (Wire.Error
              { req_id = req.Wire.id;
                msg = Printf.sprintf "unknown policy %S" req.Wire.policy })
       end
       else if
         Atomic.get t.stopping
         (* draining: no new admissions, only the backlog finishes *)
         || not (Parallel.Bqueue.try_push t.queue { fd; work = Cell req })
       then begin
         Atomic.incr c.shed;
         refuse (shed_reply t req.Wire.id)
       end
       else Atomic.incr c.admitted);
      Line_done
(* on successful push the worker owns [fd] *)

let acceptor t =
  let pending = ref [] in
  let chunk = Bytes.create 4096 in
  let drop p = close_quiet p.pfd in
  let rec feed p =
    (* read what is available; a complete request hands the socket off *)
    match Unix.read p.pfd chunk 0 (Bytes.length chunk) with
    | 0 ->
        drop p;
        None
    | n ->
        Buffer.add_subbytes p.buf chunk 0 n;
        advance p
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Some p
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> feed p
    | exception Unix.Unix_error _ ->
        drop p;
        None
  and advance p =
    match p.mode with
    | Body h ->
        if Buffer.length p.buf >= h.Wire.spec_bytes then begin
          (* bytes past the declared length are ignored: one request
             per connection, no pipelining *)
          handle_submit t p.pfd h (Buffer.sub p.buf 0 h.Wire.spec_bytes);
          None
        end
        else feed p
    | Header -> (
        let s = Buffer.contents p.buf in
        match String.index_opt s '\n' with
        | Some i -> (
            match handle_line t p.pfd (String.sub s 0 i) with
            | Line_done -> None
            | Await_body h ->
                (* whatever followed the newline is body prefix *)
                let rest = String.sub s (i + 1) (String.length s - i - 1) in
                Buffer.clear p.buf;
                Buffer.add_string p.buf rest;
                p.mode <- Body h;
                advance p)
        | None ->
            if Buffer.length p.buf > max_line then begin
              Atomic.incr t.counters.errors;
              ignore
                (send_line p.pfd
                   ~deadline:(Unix.gettimeofday () +. t.cfg.io_deadline)
                   (Wire.render_response
                      (Wire.Error { req_id = ""; msg = "request too long" })));
              drop p;
              None
            end
            else feed p)
  in
  let rec loop () =
    if Atomic.get t.stopping then ()
    else begin
      let fds = t.listen_fd :: List.map (fun p -> p.pfd) !pending in
      let ready, _, _ =
        select_retry fds [] (Unix.gettimeofday () +. 0.2)
      in
      if List.mem t.listen_fd ready then begin
        let rec accept_all () =
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
              Unix.set_nonblock fd;
              Atomic.incr t.counters.conns;
              pending :=
                {
                  pfd = fd;
                  buf = Buffer.create 128;
                  expires = Unix.gettimeofday () +. t.cfg.io_deadline;
                  mode = Header;
                }
                :: !pending;
              accept_all ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_all ()
          | exception Unix.Unix_error _ -> ()
        in
        accept_all ()
      end;
      let now = Unix.gettimeofday () in
      pending :=
        List.filter_map
          (fun p ->
            if List.mem p.pfd ready then feed p
            else if now >= p.expires then begin
              drop p;
              None
            end
            else Some p)
          !pending;
      loop ()
    end
  in
  loop ();
  List.iter drop !pending

(* ---- lifecycle ----------------------------------------------------- *)

let listen cfg =
  (match cfg.addr with
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  let domain =
    match cfg.addr with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt fd Unix.SO_REUSEADDR true
   with Unix.Unix_error _ -> ());
  Unix.bind fd (sockaddr_of cfg.addr);
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  fd

let start cfg =
  if cfg.jobs < 1 then invalid_arg "Server.start: jobs < 1";
  if cfg.queue_cap < 1 then invalid_arg "Server.start: queue_cap < 1";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  if cfg.max_spec_bytes > Wire.max_spec_bytes then
    invalid_arg "Server.start: max_spec_bytes above the framing cap";
  let cache = Hashtbl.create 64 in
  let spec_cache = Hashtbl.create 64 in
  let journal_w = load_cache cfg cache spec_cache in
  let t =
    {
      cfg;
      queue = Parallel.Bqueue.create ~capacity:cfg.queue_cap;
      stopping = Atomic.make false;
      aborting = Atomic.make false;
      counters = new_counters ();
      ladder =
        Ladder.make ~trip_after:cfg.trip_after
          ~backoff:
            (Netsim.Backoff.make ~base_s:cfg.breaker_base_s
               ~cap_s:cfg.breaker_cap_s ())
          ~seed:cfg.seed ();
      cache;
      cache_lock = Mutex.create ();
      shared_cache = Hashtbl.create 8;
      shared_lock = Mutex.create ();
      tenants =
        Tenant.create
          { Tenant.default_config with
            Tenant.rate = cfg.quota_rate;
            burst = cfg.quota_burst };
      spec_cache;
      spec_lock = Mutex.create ();
      journal_w;
      epoch = Atomic.make 0;
      listen_fd = listen cfg;
      domains = [];
    }
  in
  let workers = List.init cfg.jobs (fun _ -> Domain.spawn (fun () -> worker t)) in
  let acc = Domain.spawn (fun () -> acceptor t) in
  t.domains <- acc :: workers;
  t

let stop ?(abort = false) t =
  (* Atomic.set only: safe from a signal handler. The acceptor notices
     within its 0.2 s select tick, stops admitting, and the join path
     closes the queue so workers drain the backlog and exit. *)
  if abort then Atomic.set t.aborting true;
  Atomic.set t.stopping true

let stats t = stats_of t

let address t = t.cfg.addr

let join t =
  (* wait for the drain request, then let the backlog finish *)
  while not (Atomic.get t.stopping) do
    Unix.sleepf 0.05
  done;
  Parallel.Bqueue.close t.queue;
  List.iter Domain.join t.domains;
  close_quiet t.listen_fd;
  (match t.cfg.addr with
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  match t.journal_w with Some w -> Parallel.Journal.close w | None -> ()

let run cfg =
  let t = start cfg in
  join t
