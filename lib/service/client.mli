(** Blocking client for the verification service: one newline-framed
    request and one reply per connection. *)

val roundtrip :
  ?timeout_s:float ->
  Server.addr -> string -> (Wire.response, string) result
(** Sends one raw request line and parses the one reply line.
    [timeout_s] (default 10) bounds connect and each socket
    read/write. Transport failures come back as [Error _], never an
    exception. *)

val check :
  ?timeout_s:float ->
  Server.addr -> Wire.request -> (Wire.response, string) result

val get_stats :
  ?timeout_s:float -> Server.addr -> ((string * int) list, string) result

(** The overload probe: hammer the server from several domains and
    tally how every request was answered. The CI smoke job floods at
    several times the queue capacity and asserts that the excess got
    explicit [shed] replies — no crash, no hang, no silent drop. *)
type flood_report = {
  sent : int;
  verdicts : int;
  flood_shed : int;
  flood_errors : int;  (** error replies and transport failures *)
  undecided : int;  (** verdict replies whose SAT column is [Undecided] *)
}

val flood :
  ?timeout_s:float ->
  ?concurrency:int ->
  total:int -> Server.addr -> Wire.request array -> flood_report
(** Sends [total] requests round-robin from [reqs] (ids rewritten to
    ["f<i>"]) using [concurrency] (default 4) client domains. *)

val pp_flood : Format.formatter -> flood_report -> unit
