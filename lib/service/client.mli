(** Blocking client for the verification service: one newline-framed
    request and one reply per connection. *)

(** {2 Low-level socket plumbing}

    Exposed for protocol extensions that read more than one reply line
    per connection (the replication puller in {!Repl}). *)

val connect : ?timeout_s:float -> Server.addr -> Unix.file_descr
(** Connected socket with send/receive timeouts set. Raises on
    failure (callers wrap). *)

val send_all : Unix.file_descr -> string -> unit

val recv_line : Unix.file_descr -> string option
(** One newline-terminated line ([None] on a clean EOF before any
    byte). Raises [Failure] past 64 KiB without a newline. *)

val roundtrip :
  ?timeout_s:float ->
  Server.addr -> string -> (Wire.response, string) result
(** Sends one raw request line and parses the one reply line.
    [timeout_s] (default 10) bounds connect and each socket
    read/write. Transport failures come back as [Error _], never an
    exception. *)

val check :
  ?timeout_s:float ->
  Server.addr -> Wire.request -> (Wire.response, string) result

val get_stats :
  ?timeout_s:float -> Server.addr -> ((string * int) list, string) result

val fence :
  ?timeout_s:float ->
  ?id:string -> Server.addr -> epoch:int -> (int, string) result
(** Raises the worker's coordinator-epoch watermark to at least [epoch]
    and returns the watermark after the raise. Sent by a coordinator
    announcing itself (primary at startup, standby at takeover) before
    it dispatches any work, so that a deposed coordinator's next
    request meets a [fenced] refusal. Idempotent and monotonic —
    re-sending after a transport failure is always safe. *)

val submit :
  ?timeout_s:float ->
  ?id:string ->
  ?tenant:string ->
  ?cmd:string ->
  ?certify:bool ->
  ?deadline_s:float ->
  Server.addr -> string -> (Wire.response, string) result
(** Submits a mini-Alloy spec text: sends the [submit] header line
    followed by the raw body bytes, then reads the one reply — a
    [Spec] verdict, a [Bad_spec] diagnostic, a [Quota] or [Shed]
    refusal. A body-write failure (the server refused from the header
    alone and closed) is swallowed so the refusal reply is still
    read. *)

(** Outcome of a {!check_retry} or {!submit_retry}: how many tries, and
    why the last failure (if any) was returned instead of retried. *)
type retry_report = {
  attempts : int;  (** total tries, including the first *)
  retried_shed : int;  (** shed replies waited out (check only) *)
  retried_transport : int;
  retried_quota : int;  (** quota refusals waited out (submit only) *)
  gave_up : string option;
      (** [Some _] only when the returned reply is still a failure:
          ["retries exhausted"] or ["retry budget exhausted"] *)
}

val check_retry :
  ?timeout_s:float ->
  ?retries:int ->
  ?retry_budget_s:float ->
  ?backoff:Netsim.Backoff.t ->
  ?seed:int ->
  Server.addr -> Wire.request -> (Wire.response, string) result * retry_report
(** {!check} that retries transport failures (connection refused during
    a restart, a connection closed before the reply) and explicit [shed]
    replies — both transient, and a check is a pure verification problem
    so re-asking is always safe. [retries] (default 0: behave exactly
    like {!check}) bounds the re-asks; [retry_budget_s] additionally
    caps the total wall clock including backoff sleeps. Delays come from
    [backoff] (default {!Netsim.Backoff.make}[ ()]: 50 ms base, 2 s cap,
    ±25% jitter) drawn from the per-request
    {!Netsim.Backoff.stream} [~seed ~key:("client/" ^ policy ^ "/" ^ id)],
    so many clients shed at the same instant spread their retries out
    instead of re-flooding in lockstep. *)

val submit_retry :
  ?timeout_s:float ->
  ?id:string ->
  ?tenant:string ->
  ?cmd:string ->
  ?certify:bool ->
  ?deadline_s:float ->
  ?retries:int ->
  ?retry_budget_s:float ->
  ?backoff:Netsim.Backoff.t ->
  ?seed:int ->
  Server.addr -> string -> (Wire.response, string) result * retry_report
(** {!submit} with the same jittered-backoff retry machinery as
    {!check_retry}, retrying only transport failures and [quota]
    refusals — safe because verdicts are content-addressed, so a
    duplicate submission can only hit the cache. A [quota] reply's
    [retry=…] hint is honored as a floor under the backoff delay.
    [shed] replies are {e not} retried (global overload — a refusal
    with substance), and neither are spec verdicts or typed
    diagnostics. *)

(** The overload probe: hammer the server from several domains and
    tally how every request was answered. The CI smoke job floods at
    several times the queue capacity and asserts that the excess got
    explicit [shed] replies — no crash, no hang, no silent drop. *)
type flood_report = {
  sent : int;
  verdicts : int;
  flood_shed : int;
  flood_errors : int;  (** error replies and transport failures *)
  undecided : int;  (** verdict replies whose SAT column is [Undecided] *)
}

val flood :
  ?timeout_s:float ->
  ?concurrency:int ->
  total:int -> Server.addr -> Wire.request array -> flood_report
(** Sends [total] requests round-robin from [reqs] (ids rewritten to
    ["f<i>"]) using [concurrency] (default 4) client domains. *)

val pp_flood : Format.formatter -> flood_report -> unit

(** The hostile-tenant probe: flood the [submit] verb, optionally
    mutating the base spec per request with the {!Alloylite.Fuzz}
    operators. The contract asserted by the CI smoke job: every
    request gets a structured reply — a verdict, a typed spanned
    diagnostic, a quota refusal or a shed — so [spec_transport]
    (and the untyped-error bucket folded into it) stays 0. *)
type spec_flood_report = {
  spec_sent : int;
  spec_verdicts : int;  (** [spec] replies (cached or computed) *)
  spec_hits : int;  (** the subset served from the verdict cache *)
  spec_typed : int;  (** [Bad_spec] replies carrying a span *)
  spec_quota : int;
  spec_shed : int;
  spec_transport : int;  (** no structured reply, or an untyped error *)
}

val spec_flood :
  ?timeout_s:float ->
  ?concurrency:int ->
  ?tenant:string ->
  ?cmd:string ->
  ?certify:bool ->
  ?mutate_seed:int ->
  total:int -> Server.addr -> string -> spec_flood_report
(** Sends [total] submissions of [spec] (ids ["sf<i>"]) from
    [concurrency] (default 2) domains. With [mutate_seed], request [i]
    instead sends the base spec after 1–3 deterministic
    {!Alloylite.Fuzz.mutate} steps seeded with [seed + i]. *)

val pp_spec_flood : Format.formatter -> spec_flood_report -> unit
