(** Consistent-hash sharding of the (policy × scope × seed) cell space
    across cluster workers.

    A classic hash ring with virtual nodes: every worker owns [points]
    pseudo-random positions on a 64-bit ring (FNV-1a through a murmur3
    avalanche finalizer — never [Hashtbl.hash], so placement is
    identical on every platform and OCaml version), and a
    cell key is owned by the first worker point clockwise of the key's
    hash. Virtual nodes keep the load split even for small fleets;
    consistency keeps re-assignment minimal — growing the fleet from
    [n] to [n+1] workers only moves keys onto the newcomer, it never
    shuffles keys between survivors (the stability property the shard
    tests pin).

    {!route} extends ownership into a {e failover order}: the owner
    first, then each distinct successor around the ring. The cluster
    walks that list when the owner is down, sheds, or straggles — so a
    given cell always fails over to the same sibling, and journal
    handoff audits stay deterministic. *)

type t

val make : ?points:int -> int -> t
(** [make n] builds the ring for workers [0 .. n-1] with [points]
    (default 64) virtual nodes each. Raises [Invalid_argument] when
    [n < 1] or [points < 1]. *)

val workers : t -> int

val hash64 : string -> int64
(** The ring's key hash (64-bit FNV-1a + avalanche), exposed for the
    placement tests. *)

val owner : t -> string -> int
(** The worker owning [key]. *)

val route : t -> string -> int list
(** Failover preference order for [key]: the owner first, then every
    other worker in ring-successor order. Always a permutation of
    [0 .. workers - 1]. *)
