type rung = Cdcl | Dpll | Explicit

let rung_name = function Cdcl -> "cdcl" | Dpll -> "dpll" | Explicit -> "explicit"

type t = { breakers : (rung * Breaker.t) list }

let make ?trip_after ?backoff ?(seed = 0) () =
  {
    breakers =
      List.map
        (fun r -> (r, Breaker.make ?trip_after ?backoff ~seed ~key:(rung_name r) ()))
        [ Cdcl; Dpll; Explicit ];
  }

let breaker t rung = List.assoc rung t.breakers

type answer = {
  verdict : Core.Experiments.sweep_verdict;
  rung : string;
  degraded : bool;  (* answered below the top admitted rung *)
  trail : (string * string) list;
}

let cancelled = function
  | Core.Experiments.Undecided "cancelled" -> true
  | _ -> false

let decide ?(now = Unix.gettimeofday) t rungs =
  let trail = ref [] in
  let note rung what = trail := (rung_name rung, what) :: !trail in
  let finish verdict rung_label ~degraded =
    { verdict; rung = rung_label; degraded; trail = List.rev !trail }
  in
  let rec walk degraded = function
    | [] ->
        finish
          (Core.Experiments.Undecided
             ("degraded: "
             ^ String.concat "; "
                 (List.rev_map (fun (r, w) -> r ^ "=" ^ w) !trail)))
          "none" ~degraded:true
    | (rung, run) :: rest ->
        let b = breaker t rung in
        if not (Breaker.admit b ~now:(now ())) then begin
          note rung "open";
          walk true rest
        end
        else begin
          match (run () : Core.Experiments.sweep_verdict) with
          | Core.Experiments.Undecided _ as v when cancelled v ->
              (* a drain or request-deadline cancellation says nothing
                 about the backend's health: no breaker transition, and
                 no point trying cheaper rungs — the request is out of
                 time. The probe slot must still be released: if this
                 admit was the half-open probe, leaving [probing] set
                 would wedge the breaker open forever. *)
              Breaker.cancel b;
              note rung "cancelled";
              finish v "none" ~degraded
          | Core.Experiments.Undecided reason ->
              Breaker.timeout b ~now:(now ());
              note rung reason;
              walk true rest
          | v ->
              Breaker.success b;
              note rung "decided";
              finish v (rung_name rung) ~degraded
        end
  in
  walk false rungs

(* ---- the standard consensus rungs -------------------------------- *)

type backend =
  | Fresh_model of Core.Mca_model.t
  | Shared_translation of Core.Mca_model.shared * Core.Mca_model.policy

let consensus_rungs ?stop ~budget_for ~backend ~exhaustive () =
  let of_bounded = function
    | Relalg.Translate.Decided Alloylite.Compile.Unsat -> Core.Experiments.Holds
    | Relalg.Translate.Decided (Alloylite.Compile.Sat _) ->
        Core.Experiments.Violated
    | Relalg.Translate.Unknown reason -> Core.Experiments.Undecided reason
  in
  let cdcl () =
    of_bounded
      (match backend with
      | Fresh_model model ->
          Core.Mca_model.check_consensus_bounded ~symmetry:true ?stop
            ~budget:(budget_for Cdcl) model
      | Shared_translation (sh, policy) ->
          (* the cached translation: no rebuild, no re-translation —
             and this worker domain's warm session solver, so learnt
             clauses amortize across every request that hits the same
             (scope, target). Service worker domains are long-lived,
             which is exactly when the per-domain session cache pays. *)
          Core.Mca_model.check_consensus_incremental ?stop
            ~budget:(budget_for Cdcl)
            (Core.Mca_model.domain_session sh)
            policy)
  in
  let dpll () =
    (* same query, no clause learning: slower on hard instances but a
       genuinely independent engine — the paper's cross-checking idea
       as a fallback *)
    let constant, problem =
      match backend with
      | Fresh_model model ->
          let cnf = Core.Mca_model.consensus_cnf model in
          (cnf.Sat.Formula.constant, lazy cnf.Sat.Formula.problem)
      | Shared_translation (sh, policy) ->
          let tr = sh.Core.Mca_model.shared_translation in
          ( tr.Relalg.Translate.cnf.Sat.Formula.constant,
            (* selector bits become unit clauses; the shared problem is
               functional, so extending it copies nothing *)
            lazy
              (Relalg.Translate.assume tr
                 (Core.Mca_model.shared_assumptions sh policy)) )
    in
    match constant with
    | Some false -> Core.Experiments.Holds
    | Some true -> Core.Experiments.Violated
    | None -> (
        match
          Sat.Dpll.solve_bounded ?stop ~budget:(budget_for Dpll)
            (Lazy.force problem)
        with
        | Sat.Solver.Decided Sat.Solver.Unsat -> Core.Experiments.Holds
        | Sat.Solver.Decided (Sat.Solver.Sat _) -> Core.Experiments.Violated
        | Sat.Solver.Unknown { reason; _ } -> Core.Experiments.Undecided reason)
  in
  [ (Cdcl, cdcl); (Dpll, dpll); (Explicit, exhaustive) ]

let check_consensus ?now ?stop ~budget_for ~backend ~exhaustive t =
  decide ?now t (consensus_rungs ?stop ~budget_for ~backend ~exhaustive ())
