(* Coordinator-journal replication: the primary side publishes its
   append-only journal record-by-record; the standby side pulls.

   The transport is deliberately pull-based, one connection per pull:
   the standby sends [repl-hello|1|id=…|from=N] and the publisher
   answers with one [repl-ack] line (its epoch, the acknowledged
   position, its record count) followed by one [repl-frame] line per
   record in [N..count), then closes. This buys three properties at
   once. First, the replica can never run ahead of the primary's disk:
   the publisher serves from a {!Parallel.Journal} tailer over the
   journal *file*, so only records the group commit has made durable
   are ever shipped. Second, each pull is one accepted connection —
   exactly the unit the socket-level fault shim ({!Shim}) counts as a
   logical send, so partition and crash windows from a
   [Netsim.Faults] plan apply to replication without any new
   machinery. Third, liveness evidence stays evidence-based in the
   cluster's existing sense: a failed pull is one observed transport
   failure against the primary, and the standby applies the same
   consecutive-failure discipline as the coordinator applies to its
   workers. *)

(* ---- publisher (primary side) -------------------------------------- *)

type publisher = {
  p_listen : Unix.file_descr;
  p_stop : bool Atomic.t;
  p_epoch : int;
  p_tail : Parallel.Journal.tailer;
  (* records tailed so far, index-addressable for [from=N] replays;
     grown only by the acceptor domain, so no lock is needed *)
  mutable p_records : string array;
  mutable p_count : int;
  mutable p_domain : unit Domain.t option;
}

let refresh p =
  let r = Parallel.Journal.tail_poll p.p_tail in
  List.iter
    (fun rec_ ->
      if p.p_count = Array.length p.p_records then begin
        let grown =
          Array.make (max 16 (2 * Array.length p.p_records)) ""
        in
        Array.blit p.p_records 0 grown 0 p.p_count;
        p.p_records <- grown
      end;
      p.p_records.(p.p_count) <- rec_;
      p.p_count <- p.p_count + 1)
    r.Parallel.Journal.tailed

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let send_lines fd lines =
  try
    Client.send_all fd (String.concat "" (List.map (fun l -> l ^ "\n") lines))
  with Unix.Unix_error _ | Failure _ -> ()

(* one pull, end to end; any I/O failure just drops the connection
   (the standby counts it as a failed pull and re-asks) *)
let serve_pull p fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
  (match (try Client.recv_line fd with _ -> None) with
  | None -> ()
  | Some line -> (
      match Wire.parse_incoming line with
      | Ok (Wire.Repl_hello { repl_from; _ }) ->
          refresh p;
          let from = min repl_from p.p_count in
          let ack =
            Wire.render_response
              (Wire.Repl_ack
                 {
                   repl_epoch = p.p_epoch;
                   repl_from = from;
                   repl_have = p.p_count;
                 })
          in
          let frames = ref [] in
          for i = p.p_count - 1 downto from do
            frames :=
              Wire.render_response
                (Wire.Repl_frame
                   {
                     frame_idx = i;
                     frame_fp = Parallel.Journal.crc32_hex p.p_records.(i);
                     frame_rec = p.p_records.(i);
                   })
              :: !frames
          done;
          send_lines fd (ack :: !frames)
      | Ok _ | Result.Error _ ->
          send_lines fd
            [
              Wire.render_response
                (Wire.Error { req_id = ""; msg = "expected repl-hello" });
            ]));
  close_quiet fd

let acceptor p =
  let rec loop () =
    if Atomic.get p.p_stop then ()
    else begin
      (match Unix.select [ p.p_listen ] [] [] 0.1 with
      | [ _ ], _, _ -> (
          match Unix.accept ~cloexec:true p.p_listen with
          | fd, _ -> serve_pull p fd
          | exception Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

let start_publisher ~addr ~journal ~epoch =
  (match addr with
  | Server.Unix_path path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | Server.Tcp _ -> ());
  let domain =
    match addr with
    | Server.Unix_path _ -> Unix.PF_UNIX
    | Server.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt fd Unix.SO_REUSEADDR true with Unix.Unix_error _ -> ());
  Unix.bind fd (Server.sockaddr_of addr);
  Unix.listen fd 16;
  let p =
    {
      p_listen = fd;
      p_stop = Atomic.make false;
      p_epoch = epoch;
      p_tail = Parallel.Journal.open_tail journal;
      p_records = Array.make 16 "";
      p_count = 0;
      p_domain = None;
    }
  in
  p.p_domain <- Some (Domain.spawn (fun () -> acceptor p));
  p

let stop_publisher p =
  if not (Atomic.exchange p.p_stop true) then begin
    (match p.p_domain with Some d -> Domain.join d | None -> ());
    close_quiet p.p_listen
  end

(* ---- puller (standby side) ----------------------------------------- *)

type pulled = {
  pulled_epoch : int;
  pulled_have : int;
  pulled_records : string list;  (** verified, contiguous from [from] *)
}

let pull ?(timeout_s = 5.0) addr ~from =
  if from < 0 then invalid_arg "Repl.pull: negative position";
  match Client.connect ~timeout_s addr with
  | exception e ->
      Result.Error (Printf.sprintf "connect: %s" (Printexc.to_string e))
  | fd ->
      Fun.protect
        ~finally:(fun () -> close_quiet fd)
        (fun () ->
          match
            Client.send_all fd (Wire.render_repl_hello ~id:"" ~from ^ "\n");
            Client.recv_line fd
          with
          | exception e ->
              Result.Error (Printf.sprintf "i/o: %s" (Printexc.to_string e))
          | None -> Result.Error "connection closed before repl-ack"
          | Some line -> (
              match Wire.parse_response line with
              | Ok (Wire.Repl_ack { repl_epoch; repl_from; repl_have }) ->
                  (* frames stream until EOF; every one must be the next
                     index and carry a matching fingerprint, or the whole
                     pull is rejected — a half-valid batch must not enter
                     the replica *)
                  let rec frames next acc =
                    match (try Client.recv_line fd with _ -> None) with
                    | None ->
                        if next = repl_have then Ok (List.rev acc)
                        else
                          Result.Error
                            (Printf.sprintf
                               "stream ended at record %d, expected %d" next
                               repl_have)
                    | Some line -> (
                        match Wire.parse_response line with
                        | Ok (Wire.Repl_frame { frame_idx; frame_fp; frame_rec })
                          ->
                            if frame_idx <> next then
                              Result.Error
                                (Printf.sprintf
                                   "out-of-order frame %d, expected %d"
                                   frame_idx next)
                            else if
                              Parallel.Journal.crc32_hex frame_rec <> frame_fp
                            then
                              Result.Error
                                (Printf.sprintf
                                   "fingerprint mismatch on frame %d" frame_idx)
                            else frames (next + 1) (frame_rec :: acc)
                        | Ok _ | Result.Error _ ->
                            Result.Error "unexpected line in frame stream")
                  in
                  if repl_from <> from then
                    (* the publisher knows fewer records than our replica:
                       a different history — refuse to diverge silently *)
                    Result.Error
                      (Printf.sprintf
                         "publisher acknowledged %d, replica is at %d"
                         repl_from from)
                  else
                    Result.map
                      (fun records ->
                        {
                          pulled_epoch = repl_epoch;
                          pulled_have = repl_have;
                          pulled_records = records;
                        })
                      (frames from [])
              | Ok (Wire.Error { msg; _ }) -> Result.Error msg
              | Ok _ -> Result.Error "unexpected reply to repl-hello"
              | Result.Error msg -> Result.Error msg))
