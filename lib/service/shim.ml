(* Connection-level fault proxy: one accepted connection = one logical
   send on the plan's (src -> dst) link, timestamped by the connection
   index. The plan decides drop/delay/partition; crash windows refuse
   connections outright. Everything runs in plain domains with an
   Atomic stop flag — the same dependency-free toolkit as the rest of
   the service. *)

type config = {
  listen : Server.addr;
  forward : Server.addr;
  plan : Netsim.Faults.plan;
  shim_src : int;
  shim_dst : int;
  delay_unit_s : float;
}

let config ?(shim_src = 0) ?(shim_dst = 1) ?(delay_unit_s = 0.05) ~listen
    ~forward plan =
  { listen; forward; plan; shim_src; shim_dst; delay_unit_s }

type t = {
  cfg : config;
  faults : Netsim.Faults.t;
  faults_lock : Mutex.t;  (* the plan's Rng stream is not thread-safe *)
  listen_fd : Unix.file_descr;
  stopping : bool Atomic.t;
  accepted : int Atomic.t;
  acceptor : unit Domain.t option ref;
  conns : unit Domain.t list ref;
  conns_lock : Mutex.t;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let write_all fd buf n =
  let off = ref 0 in
  while !off < n do
    match Unix.write fd buf !off (n - !off) with
    | 0 -> raise Exit
    | k -> off := !off + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* bidirectional copy until both sides are done, the shim stops, or
   either side errors (a reset is just another fault to the peer) *)
let pump stopping a b =
  let buf = Bytes.create 4096 in
  let open_a = ref true and open_b = ref true in
  (try
     while (!open_a || !open_b) && not (Atomic.get stopping) do
       let rd =
         (if !open_a then [ a ] else []) @ if !open_b then [ b ] else []
       in
       let ready, _, _ = Unix.select rd [] [] 0.25 in
       List.iter
         (fun fd ->
           let fwd = if fd == a then b else a in
           match Unix.read fd buf 0 (Bytes.length buf) with
           | 0 ->
               (try Unix.shutdown fwd Unix.SHUTDOWN_SEND
                with Unix.Unix_error _ -> ());
               if fd == a then open_a := false else open_b := false
           | n -> write_all fwd buf n
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
         ready
     done
   with _ -> ());
  close_quiet a;
  close_quiet b

(* is the worker inside one of its crash windows at logical [time]? *)
let crashed_at plan ~agent ~time =
  List.exists
    (fun c ->
      c.Netsim.Faults.agent = agent
      && time >= c.crash_at
      && match c.restart_at with None -> true | Some r -> time < r)
    plan.Netsim.Faults.crashes

let handle t client =
  let time = Atomic.fetch_and_add t.accepted 1 in
  let cfg = t.cfg in
  if crashed_at cfg.plan ~agent:cfg.shim_dst ~time then begin
    Mutex.lock t.faults_lock;
    Netsim.Faults.note_to_down t.faults ~time ~src:cfg.shim_src
      ~dst:cfg.shim_dst;
    Mutex.unlock t.faults_lock;
    close_quiet client
  end
  else begin
    Mutex.lock t.faults_lock;
    let action =
      Netsim.Faults.on_send t.faults ~time ~src:cfg.shim_src ~dst:cfg.shim_dst
    in
    Mutex.unlock t.faults_lock;
    match action with
    | Netsim.Faults.Lost -> close_quiet client
    | Netsim.Faults.Pass { delays } ->
        let delay = match delays with d :: _ -> d | [] -> 0 in
        if delay > 0 then Unix.sleepf (float_of_int delay *. cfg.delay_unit_s);
        if Atomic.get t.stopping then close_quiet client
        else begin
          match
            let fd =
              Unix.socket ~cloexec:true
                (match cfg.forward with
                | Server.Unix_path _ -> Unix.PF_UNIX
                | Server.Tcp _ -> Unix.PF_INET)
                Unix.SOCK_STREAM 0
            in
            (try Unix.connect fd (Server.sockaddr_of cfg.forward)
             with e -> close_quiet fd; raise e);
            fd
          with
          | upstream -> pump t.stopping client upstream
          | exception _ -> close_quiet client
        end
  end

let acceptor_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | client, _ ->
            let d = Domain.spawn (fun () -> handle t client) in
            Mutex.lock t.conns_lock;
            t.conns := d :: !(t.conns);
            Mutex.unlock t.conns_lock
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ()
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> Atomic.set t.stopping true
  done

let start cfg =
  (match cfg.listen with
  | Server.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Server.Tcp _ -> ());
  let fd =
    Unix.socket ~cloexec:true
      (match cfg.listen with
      | Server.Unix_path _ -> Unix.PF_UNIX
      | Server.Tcp _ -> Unix.PF_INET)
      Unix.SOCK_STREAM 0
  in
  (match cfg.listen with
  | Server.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Server.Unix_path _ -> ());
  Unix.bind fd (Server.sockaddr_of cfg.listen);
  Unix.listen fd 64;
  let t =
    {
      cfg;
      faults = Netsim.Faults.start cfg.plan;
      faults_lock = Mutex.create ();
      listen_fd = fd;
      stopping = Atomic.make false;
      accepted = Atomic.make 0;
      acceptor = ref None;
      conns = ref [];
      conns_lock = Mutex.create ();
    }
  in
  t.acceptor := Some (Domain.spawn (fun () -> acceptor_loop t));
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (match !(t.acceptor) with
    | Some d ->
        Domain.join d;
        t.acceptor := None
    | None -> ());
    close_quiet t.listen_fd;
    (match t.cfg.listen with
    | Server.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | Server.Tcp _ -> ());
    Mutex.lock t.conns_lock;
    let conns = !(t.conns) in
    t.conns := [];
    Mutex.unlock t.conns_lock;
    List.iter Domain.join conns
  end

let connections t = Atomic.get t.accepted
let faults t = t.faults
