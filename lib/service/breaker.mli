(** Per-backend circuit breaker for the degradation ladder.

    A backend that keeps timing out stops being asked: after
    [trip_after] consecutive timeouts the breaker opens and every
    {!admit} is refused until a cooldown (drawn from the backend's
    {!Netsim.Backoff.stream}, so co-tripped breakers half-open at
    decorrelated times) has passed. It then goes {e half-open}: exactly
    one caller is admitted as a probe — a probe success closes the
    breaker and resets the schedule, a probe timeout re-opens it with
    the next, longer cooldown.

    Every transition takes the clock as an argument ([~now]), which
    makes the state machine a pure function of its inputs — the tests
    drive it through years of simulated time in microseconds. Instances
    are mutex-protected: worker domains share one breaker per backend. *)

type t

type state = Closed | Open_until of float | Half_open

val make :
  ?trip_after:int -> ?backoff:Netsim.Backoff.t -> seed:int -> key:string ->
  unit -> t
(** Defaults: trip after 3 consecutive timeouts, cooldowns from
    [Backoff.make ~base_s:1.0 ~cap_s:60.0 ()]. [key] names the backend
    (its jitter stream identity). Raises [Invalid_argument] when
    [trip_after < 1]. *)

val admit : t -> now:float -> bool
(** May this backend be tried? [true] when closed, or as the single
    half-open probe once the cooldown has passed. A refused caller
    should fall to the next rung, not wait. *)

val success : t -> unit
(** The backend answered: close and reset (also ends a probe). *)

val cancel : t -> unit
(** The attempt was cancelled (drain or request deadline) before the
    backend could prove anything either way: no state transition, but a
    half-open probe slot is released — without this, a cancelled probe
    would leave the breaker refusing every future probe forever. *)

val timeout : t -> now:float -> unit
(** The backend timed out. Counts toward [trip_after] when closed;
    immediately re-opens (with the next cooldown) when it was a
    half-open probe. *)

val state : t -> now:float -> state
val pp_state : Format.formatter -> state -> unit
