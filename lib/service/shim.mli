(** Socket-level fault injection between a cluster coordinator and one
    worker, driven by a {!Netsim.Faults} plan.

    The shim listens on its own address and proxies each accepted
    connection to the worker's real address — unless the plan says
    otherwise. One {e connection} is one logical send on the
    [src → dst] link, and the shim's logical clock is the accepted
    connection index, so a plan's windows and crash schedules read as
    "the 5th through 12th connection attempts", deterministically:

    - {!Netsim.Faults.on_send} returning [Lost] (a drop, or a partition
      window) closes the client connection without contacting the
      worker — the coordinator sees a dead connection, exactly what a
      partitioned network gives it;
    - [Pass] with a delay holds the connection for
      [delay × delay_unit_s] before proxying (duplication is meaningless
      for a connection; an extra copy is ignored);
    - a plan {e crash window} for agent [dst] refuses connections for
      its duration ({!Netsim.Faults.note_to_down} is recorded), the
      connection-refused shape of a crashed worker, with restart at the
      scheduled time.

    Because the shim sits at the socket layer, the coordinator under
    test runs completely unmodified — the same evidence-based failure
    detection, failover and retry paths fire as against a genuinely
    bad network. *)

type config = {
  listen : Server.addr;  (** where the coordinator connects *)
  forward : Server.addr;  (** the real worker *)
  plan : Netsim.Faults.plan;
  shim_src : int;  (** coordinator's agent id in the plan (usually 0) *)
  shim_dst : int;  (** worker's agent id in the plan *)
  delay_unit_s : float;  (** seconds per plan delay step *)
}

val config :
  ?shim_src:int -> ?shim_dst:int -> ?delay_unit_s:float ->
  listen:Server.addr -> forward:Server.addr -> Netsim.Faults.plan -> config
(** Defaults: src 0, dst 1, 0.05 s per delay step. *)

type t

val start : config -> t
(** Binds and starts proxying. Raises [Unix.Unix_error] when [listen]
    cannot be bound. *)

val stop : t -> unit
(** Stops accepting, closes the listener, interrupts in-flight proxied
    connections and joins every domain. Idempotent. *)

val connections : t -> int
(** Connections accepted so far — the shim's logical clock. *)

val faults : t -> Netsim.Faults.t
(** The started plan (ledger and event log included), for assertions. *)
