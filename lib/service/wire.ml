(* Newline-framed key=value wire protocol, reusing the journal record
   syntax of Core.Experiments (pipe-separated fields, percent escaping).
   One line = one message; a check request names a policy-matrix cell
   and the verdict reply carries the same three-column verdict as a
   sweep cell, so the service, the sweep and the journal all speak one
   vocabulary. *)

let escape = Core.Experiments.escape_field
let unescape = Core.Experiments.unescape_field

type request = {
  id : string;
  policy : string;
  agents : int;
  items : int;
  states : int;
  values : int;
  seed : int;
  deadline_s : float option;
  epoch : int option;
      (** coordinator leadership epoch; [None] = unfenced legacy client *)
}

let request ?(id = "") ?(agents = 2) ?(items = 2) ?(states = 5) ?(values = 6)
    ?(seed = 1) ?deadline_s ?epoch policy =
  { id; policy; agents; items; states; values; seed; deadline_s; epoch }

let scope_of_request r =
  ( Printf.sprintf "%dp%dv/%dst" r.agents r.items r.states,
    {
      Core.Mca_model.pnodes = r.agents;
      vnodes = r.items;
      states = r.states;
      values = r.values;
      bitwidth = 4;
    } )

(* ---- tenant spec submission --------------------------------------- *)

(* The absolute framing cap: a submit header declaring more body bytes
   than this is malformed, full stop — the server never reads past it
   no matter how the per-server [max_spec_bytes] is configured. *)
let max_spec_bytes = 1 lsl 20

type submit_header = {
  sub_id : string;
  tenant : string;  (** quota/fairness identity; [""] = anonymous *)
  spec_bytes : int;  (** declared body length following the header line *)
  sub_cmd : string option;  (** named command to run; [None] = first *)
  certify : bool;
  sub_deadline_s : float option;
}

let submit ?(id = "") ?(tenant = "") ?cmd ?(certify = false) ?deadline_s
    ~spec_bytes () =
  { sub_id = id; tenant; spec_bytes; sub_cmd = cmd; certify;
    sub_deadline_s = deadline_s }

type spec_verdict =
  | Spec_holds
  | Spec_counterexample
  | Spec_instance
  | Spec_none
  | Spec_unknown of string

let spec_verdict_to_wire = function
  | Spec_holds -> "holds"
  | Spec_counterexample -> "counterexample"
  | Spec_instance -> "instance"
  | Spec_none -> "none"
  | Spec_unknown r -> "unknown:" ^ escape r

let spec_verdict_of_wire s =
  match s with
  | "holds" -> Some Spec_holds
  | "counterexample" -> Some Spec_counterexample
  | "instance" -> Some Spec_instance
  | "none" -> Some Spec_none
  | _ ->
      if String.length s >= 8 && String.sub s 0 8 = "unknown:" then
        Some (Spec_unknown (unescape (String.sub s 8 (String.length s - 8))))
      else None

type spec_reply = {
  spec_id : string;
  digest : string;  (** content address of the submitted spec text *)
  command : string;  (** the command that was run, e.g. ["check a"] *)
  spec_verdict : spec_verdict;
  certified : bool;
  spec_cached : bool;
  spec_secs : float;  (** solve seconds (the original ones on a hit) *)
}

type verdict_reply = {
  req_id : string;
  sat : Core.Experiments.sweep_verdict;
  exhaustive : Core.Experiments.sweep_verdict;
  sim_ok : bool;
  rung : string;  (** ladder rung that answered the SAT column *)
  cached : bool;  (** served from the journal, no verification re-run *)
  secs : float;
}

type response =
  | Verdict of verdict_reply
  | Spec of spec_reply
  | Shed of { req_id : string; depth : int; capacity : int }
  | Quota of { req_id : string; tenant : string; retry_after_s : float }
      (** per-tenant admission refused: token bucket empty or fair
          share of the queue already held *)
  | Bad_spec of { req_id : string; diag : Alloylite.Diag.t }
      (** a typed, span-carrying rejection of the submitted spec *)
  | Error of { req_id : string; msg : string }
  | Stats of (string * int) list
  | Fenced of { req_id : string; fenced_epoch : int }
      (** the request carried a stale coordinator epoch: a newer
          coordinator has taken over at [fenced_epoch] and this worker
          refuses to do (or journal) any work for the deposed one *)
  | Repl_ack of { repl_epoch : int; repl_from : int; repl_have : int }
      (** replication handshake reply: the primary speaks epoch
          [repl_epoch], acknowledges the standby's position [repl_from]
          and holds [repl_have] journal records; [repl-frame] lines for
          records [repl_from..repl_have-1] follow on the same
          connection *)
  | Repl_frame of { frame_idx : int; frame_fp : string; frame_rec : string }
      (** one replicated journal record: its index in the primary's
          journal, the CRC-32 of its bytes (the same fingerprint
          {!Parallel.Journal} frames with), and the record itself *)

type incoming =
  | Check of request
  | Submit of submit_header
  | Get_stats
  | Fence of { fence_id : string; fence_epoch : int }
      (** raise this worker's epoch watermark — a new coordinator
          announcing itself before dispatching any work *)
  | Repl_hello of { repl_id : string; repl_from : int }
      (** a standby asking the primary for journal records from index
          [repl_from] on *)

(* ---- rendering ---- *)

let render_request r =
  Printf.sprintf "check|1|id=%s|policy=%s|n=%d|j=%d|st=%d|vals=%d|seed=%d%s%s"
    (escape r.id) (escape r.policy) r.agents r.items r.states r.values r.seed
    (match r.deadline_s with
    | None -> ""
    | Some d -> Printf.sprintf "|deadline=%.6f" d)
    (match r.epoch with
    | None -> ""
    | Some e -> Printf.sprintf "|epoch=%d" e)

let stats_request = "stats|1"

let render_fence ~id ~epoch =
  Printf.sprintf "fence|1|id=%s|epoch=%d" (escape id) epoch

let render_repl_hello ~id ~from =
  Printf.sprintf "repl-hello|1|id=%s|from=%d" (escape id) from

(* The submit header line. The spec body — exactly [spec_bytes] raw
   bytes, NOT escaped and possibly containing newlines — follows
   immediately after the header's terminating newline. *)
let render_submit_header h =
  Printf.sprintf "submit|1|id=%s|tenant=%s|bytes=%d%s%s%s" (escape h.sub_id)
    (escape h.tenant) h.spec_bytes
    (match h.sub_cmd with
    | None -> ""
    | Some c -> Printf.sprintf "|cmd=%s" (escape c))
    (if h.certify then "|certify=true" else "")
    (match h.sub_deadline_s with
    | None -> ""
    | Some d -> Printf.sprintf "|deadline=%.6f" d)

(* Every reply names the protocol revision it speaks ([proto=1]).
   Parsers ignore keys they do not know (and a coordinator may meet
   workers one revision away in either direction), so the field is
   advisory today — but it is the hook that lets a future revision be
   negotiated instead of guessed. Placed right after [id] so the
   verdict-column runs ([sat=…|exh=…|sim=…], [rung=…|cached=…]) the
   smoke jobs grep for stay contiguous. *)
let proto_version = 1

let render_response = function
  | Verdict v ->
      Printf.sprintf
        "verdict|1|id=%s|proto=%d|sat=%s|exh=%s|sim=%b|rung=%s|cached=%b|secs=%.6f"
        (escape v.req_id) proto_version
        (Core.Experiments.verdict_to_wire v.sat)
        (Core.Experiments.verdict_to_wire v.exhaustive)
        v.sim_ok (escape v.rung) v.cached v.secs
  | Spec s ->
      Printf.sprintf
        "spec|1|id=%s|proto=%d|digest=%s|cmd=%s|verdict=%s|cert=%b|cached=%b|secs=%.6f"
        (escape s.spec_id) proto_version (escape s.digest) (escape s.command)
        (spec_verdict_to_wire s.spec_verdict)
        s.certified s.spec_cached s.spec_secs
  | Shed s ->
      Printf.sprintf "shed|1|id=%s|proto=%d|depth=%d|cap=%d" (escape s.req_id)
        proto_version s.depth s.capacity
  | Quota q ->
      Printf.sprintf "quota|1|id=%s|proto=%d|tenant=%s|retry=%.3f"
        (escape q.req_id) proto_version (escape q.tenant) q.retry_after_s
  | Bad_spec b ->
      (* rendered as an [error] reply so one-revision-old clients still
         see a refusal; the extra span keys are what typed clients use *)
      let d = b.diag in
      Printf.sprintf
        "error|1|id=%s|proto=%d|stage=%s|line=%d|col=%d|eline=%d|ecol=%d|msg=%s%s"
        (escape b.req_id) proto_version
        (Alloylite.Diag.stage_name d.Alloylite.Diag.stage)
        d.span.line d.span.col d.span.end_line d.span.end_col
        (escape (Alloylite.Diag.to_string d))
        (match d.hint with
        | None -> ""
        | Some h -> Printf.sprintf "|hint=%s" (escape h))
  | Error e ->
      Printf.sprintf "error|1|id=%s|proto=%d|msg=%s" (escape e.req_id)
        proto_version (escape e.msg)
  | Stats kvs ->
      String.concat "|"
        ("stats" :: "1"
        :: Printf.sprintf "proto=%d" proto_version
        :: List.map (fun (k, v) -> Printf.sprintf "%s=%d" (escape k) v) kvs)
  | Fenced f ->
      Printf.sprintf "fenced|1|id=%s|proto=%d|epoch=%d" (escape f.req_id)
        proto_version f.fenced_epoch
  | Repl_ack a ->
      Printf.sprintf "repl-ack|1|proto=%d|epoch=%d|from=%d|have=%d"
        proto_version a.repl_epoch a.repl_from a.repl_have
  | Repl_frame f ->
      Printf.sprintf "repl-frame|1|idx=%d|fp=%s|rec=%s" f.frame_idx
        (escape f.frame_fp) (escape f.frame_rec)

(* ---- parsing ---- *)

let fields_of line =
  match String.split_on_char '|' line with
  | kind :: "1" :: fields ->
      Some
        ( kind,
          List.filter_map
            (fun f ->
              match String.index_opt f '=' with
              | Some i ->
                  Some
                    ( String.sub f 0 i,
                      String.sub f (i + 1) (String.length f - i - 1) )
              | None -> None)
            fields )
  | _ -> None

let field assoc k = Option.map unescape (List.assoc_opt k assoc)

let int_field assoc k = Option.bind (List.assoc_opt k assoc) int_of_string_opt

let positive name = function
  | Some n when n >= 1 -> Ok n
  | Some _ -> Result.Error (Printf.sprintf "non-positive %s" name)
  | None -> Result.Error (Printf.sprintf "missing %s" name)

let parse_incoming line =
  match fields_of line with
  | Some ("stats", _) -> Ok Get_stats
  | Some ("check", assoc) -> (
      let ( let* ) = Result.bind in
      let* policy =
        Option.to_result ~none:"missing policy" (field assoc "policy")
      in
      let* agents = positive "n" (int_field assoc "n") in
      let* items = positive "j" (int_field assoc "j") in
      let* states = positive "st" (int_field assoc "st") in
      let* values = positive "vals" (int_field assoc "vals") in
      let seed = Option.value (int_field assoc "seed") ~default:1 in
      let id = Option.value (field assoc "id") ~default:"" in
      let epoch = int_field assoc "epoch" in
      match List.assoc_opt "deadline" assoc with
      | Some d -> (
          match float_of_string_opt d with
          | Some d when d > 0.0 ->
              Ok
                (Check
                   { id; policy; agents; items; states; values; seed;
                     deadline_s = Some d; epoch })
          | _ -> Result.Error "invalid deadline")
      | None ->
          Ok
            (Check
               { id; policy; agents; items; states; values; seed;
                 deadline_s = None; epoch }))
  | Some ("fence", assoc) -> (
      match int_field assoc "epoch" with
      | Some e when e >= 1 ->
          Ok
            (Fence
               {
                 fence_id = Option.value (field assoc "id") ~default:"";
                 fence_epoch = e;
               })
      | _ -> Result.Error "fence without a positive epoch")
  | Some ("repl-hello", assoc) -> (
      match int_field assoc "from" with
      | Some from when from >= 0 ->
          Ok
            (Repl_hello
               {
                 repl_id = Option.value (field assoc "id") ~default:"";
                 repl_from = from;
               })
      | _ -> Result.Error "repl-hello without a valid position")
  | Some ("submit", assoc) -> (
      let ( let* ) = Result.bind in
      let* spec_bytes =
        Option.to_result ~none:"missing bytes" (int_field assoc "bytes")
      in
      let* spec_bytes =
        if spec_bytes < 0 then Result.Error "negative bytes"
        else if spec_bytes > max_spec_bytes then
          Result.Error
            (Printf.sprintf "declared body of %d bytes exceeds framing cap %d"
               spec_bytes max_spec_bytes)
        else Ok spec_bytes
      in
      let header =
        {
          sub_id = Option.value (field assoc "id") ~default:"";
          tenant = Option.value (field assoc "tenant") ~default:"";
          spec_bytes;
          sub_cmd = field assoc "cmd";
          certify =
            Option.value ~default:false
              (Option.bind (List.assoc_opt "certify" assoc) bool_of_string_opt);
          sub_deadline_s = None;
        }
      in
      match List.assoc_opt "deadline" assoc with
      | Some d -> (
          match float_of_string_opt d with
          | Some d when d > 0.0 ->
              Ok (Submit { header with sub_deadline_s = Some d })
          | _ -> Result.Error "invalid deadline")
      | None -> Ok (Submit header))
  | Some (kind, _) -> Result.Error (Printf.sprintf "unknown request kind %S" kind)
  | None -> Result.Error "malformed request line"

let parse_response line =
  match fields_of line with
  | Some ("verdict", assoc) -> (
      let ( let* ) = Result.bind in
      let* sat =
        Option.to_result ~none:"missing sat verdict"
          (Option.bind (List.assoc_opt "sat" assoc)
             Core.Experiments.verdict_of_wire)
      in
      let* exhaustive =
        Option.to_result ~none:"missing exh verdict"
          (Option.bind (List.assoc_opt "exh" assoc)
             Core.Experiments.verdict_of_wire)
      in
      let* sim_ok =
        Option.to_result ~none:"missing sim flag"
          (Option.bind (List.assoc_opt "sim" assoc) bool_of_string_opt)
      in
      let cached =
        Option.value ~default:false
          (Option.bind (List.assoc_opt "cached" assoc) bool_of_string_opt)
      in
      let secs =
        Option.value ~default:0.0
          (Option.bind (List.assoc_opt "secs" assoc) float_of_string_opt)
      in
      Ok
        (Verdict
           {
             req_id = Option.value (field assoc "id") ~default:"";
             sat;
             exhaustive;
             sim_ok;
             rung = Option.value (field assoc "rung") ~default:"";
             cached;
             secs;
           }))
  | Some ("spec", assoc) -> (
      let ( let* ) = Result.bind in
      let* spec_verdict =
        Option.to_result ~none:"missing spec verdict"
          (Option.bind (List.assoc_opt "verdict" assoc) spec_verdict_of_wire)
      in
      Ok
        (Spec
           {
             spec_id = Option.value (field assoc "id") ~default:"";
             digest = Option.value (field assoc "digest") ~default:"";
             command = Option.value (field assoc "cmd") ~default:"";
             spec_verdict;
             certified =
               Option.value ~default:false
                 (Option.bind (List.assoc_opt "cert" assoc) bool_of_string_opt);
             spec_cached =
               Option.value ~default:false
                 (Option.bind (List.assoc_opt "cached" assoc)
                    bool_of_string_opt);
             spec_secs =
               Option.value ~default:0.0
                 (Option.bind (List.assoc_opt "secs" assoc)
                    float_of_string_opt);
           }))
  | Some ("shed", assoc) ->
      Ok
        (Shed
           {
             req_id = Option.value (field assoc "id") ~default:"";
             depth = Option.value (int_field assoc "depth") ~default:0;
             capacity = Option.value (int_field assoc "cap") ~default:0;
           })
  | Some ("quota", assoc) ->
      Ok
        (Quota
           {
             req_id = Option.value (field assoc "id") ~default:"";
             tenant = Option.value (field assoc "tenant") ~default:"";
             retry_after_s =
               Option.value ~default:0.0
                 (Option.bind (List.assoc_opt "retry" assoc)
                    float_of_string_opt);
           })
  | Some ("error", assoc) -> (
      let req_id = Option.value (field assoc "id") ~default:"" in
      let msg = Option.value (field assoc "msg") ~default:"" in
      (* an [error] carrying a [stage] key is a typed spec rejection *)
      match Option.bind (field assoc "stage") Alloylite.Diag.stage_of_name with
      | Some stage ->
          let at k d = Option.value (int_field assoc k) ~default:d in
          let line = at "line" 1 and col = at "col" 1 in
          let hint = field assoc "hint" in
          (* the [msg] field carries the full rendered diagnostic for the
             benefit of pre-submit clients; strip the location prefix and
             hint suffix back off so re-rendering is idempotent *)
          let msg =
            let prefix =
              Printf.sprintf "%s error: line %d, col %d: "
                (Alloylite.Diag.stage_name stage)
                line col
            in
            let msg =
              if String.starts_with ~prefix msg then
                String.sub msg (String.length prefix)
                  (String.length msg - String.length prefix)
              else msg
            in
            match hint with
            | None -> msg
            | Some h ->
                let suffix = Printf.sprintf " (hint: %s)" h in
                if String.ends_with ~suffix msg then
                  String.sub msg 0 (String.length msg - String.length suffix)
                else msg
          in
          Ok
            (Bad_spec
               {
                 req_id;
                 diag =
                   {
                     Alloylite.Diag.stage;
                     span =
                       {
                         line;
                         col;
                         end_line = at "eline" line;
                         end_col = at "ecol" col;
                       };
                     msg;
                     hint;
                   };
               })
      | None -> Ok (Error { req_id; msg }))
  | Some ("stats", assoc) ->
      Ok
        (Stats
           (List.filter_map
              (fun (k, v) ->
                (* [proto] is framing metadata, not a counter *)
                if k = "proto" then None
                else
                  Option.map (fun n -> (unescape k, n)) (int_of_string_opt v))
              assoc))
  | Some ("fenced", assoc) -> (
      match int_field assoc "epoch" with
      | Some e ->
          Ok
            (Fenced
               {
                 req_id = Option.value (field assoc "id") ~default:"";
                 fenced_epoch = e;
               })
      | None -> Result.Error "fenced reply without an epoch")
  | Some ("repl-ack", assoc) -> (
      match
        (int_field assoc "epoch", int_field assoc "from", int_field assoc "have")
      with
      | Some repl_epoch, Some repl_from, Some repl_have
        when repl_from >= 0 && repl_have >= 0 ->
          Ok (Repl_ack { repl_epoch; repl_from; repl_have })
      | _ -> Result.Error "malformed repl-ack")
  | Some ("repl-frame", assoc) -> (
      match (int_field assoc "idx", field assoc "fp", field assoc "rec") with
      | Some frame_idx, Some frame_fp, Some frame_rec when frame_idx >= 0 ->
          Ok (Repl_frame { frame_idx; frame_fp; frame_rec })
      | _ -> Result.Error "malformed repl-frame")
  | Some (kind, _) -> Result.Error (Printf.sprintf "unknown response kind %S" kind)
  | None -> Result.Error "malformed response line"

let pp_response ppf r = Format.pp_print_string ppf (render_response r)
