(* Newline-framed key=value wire protocol, reusing the journal record
   syntax of Core.Experiments (pipe-separated fields, percent escaping).
   One line = one message; a check request names a policy-matrix cell
   and the verdict reply carries the same three-column verdict as a
   sweep cell, so the service, the sweep and the journal all speak one
   vocabulary. *)

let escape = Core.Experiments.escape_field
let unescape = Core.Experiments.unescape_field

type request = {
  id : string;
  policy : string;
  agents : int;
  items : int;
  states : int;
  values : int;
  seed : int;
  deadline_s : float option;
}

let request ?(id = "") ?(agents = 2) ?(items = 2) ?(states = 5) ?(values = 6)
    ?(seed = 1) ?deadline_s policy =
  { id; policy; agents; items; states; values; seed; deadline_s }

let scope_of_request r =
  ( Printf.sprintf "%dp%dv/%dst" r.agents r.items r.states,
    {
      Core.Mca_model.pnodes = r.agents;
      vnodes = r.items;
      states = r.states;
      values = r.values;
      bitwidth = 4;
    } )

type verdict_reply = {
  req_id : string;
  sat : Core.Experiments.sweep_verdict;
  exhaustive : Core.Experiments.sweep_verdict;
  sim_ok : bool;
  rung : string;  (** ladder rung that answered the SAT column *)
  cached : bool;  (** served from the journal, no verification re-run *)
  secs : float;
}

type response =
  | Verdict of verdict_reply
  | Shed of { req_id : string; depth : int; capacity : int }
  | Error of { req_id : string; msg : string }
  | Stats of (string * int) list

type incoming = Check of request | Get_stats

(* ---- rendering ---- *)

let render_request r =
  Printf.sprintf "check|1|id=%s|policy=%s|n=%d|j=%d|st=%d|vals=%d|seed=%d%s"
    (escape r.id) (escape r.policy) r.agents r.items r.states r.values r.seed
    (match r.deadline_s with
    | None -> ""
    | Some d -> Printf.sprintf "|deadline=%.6f" d)

let stats_request = "stats|1"

(* Every reply names the protocol revision it speaks ([proto=1]).
   Parsers ignore keys they do not know (and a coordinator may meet
   workers one revision away in either direction), so the field is
   advisory today — but it is the hook that lets a future revision be
   negotiated instead of guessed. Placed right after [id] so the
   verdict-column runs ([sat=…|exh=…|sim=…], [rung=…|cached=…]) the
   smoke jobs grep for stay contiguous. *)
let proto_version = 1

let render_response = function
  | Verdict v ->
      Printf.sprintf
        "verdict|1|id=%s|proto=%d|sat=%s|exh=%s|sim=%b|rung=%s|cached=%b|secs=%.6f"
        (escape v.req_id) proto_version
        (Core.Experiments.verdict_to_wire v.sat)
        (Core.Experiments.verdict_to_wire v.exhaustive)
        v.sim_ok (escape v.rung) v.cached v.secs
  | Shed s ->
      Printf.sprintf "shed|1|id=%s|proto=%d|depth=%d|cap=%d" (escape s.req_id)
        proto_version s.depth s.capacity
  | Error e ->
      Printf.sprintf "error|1|id=%s|proto=%d|msg=%s" (escape e.req_id)
        proto_version (escape e.msg)
  | Stats kvs ->
      String.concat "|"
        ("stats" :: "1"
        :: Printf.sprintf "proto=%d" proto_version
        :: List.map (fun (k, v) -> Printf.sprintf "%s=%d" (escape k) v) kvs)

(* ---- parsing ---- *)

let fields_of line =
  match String.split_on_char '|' line with
  | kind :: "1" :: fields ->
      Some
        ( kind,
          List.filter_map
            (fun f ->
              match String.index_opt f '=' with
              | Some i ->
                  Some
                    ( String.sub f 0 i,
                      String.sub f (i + 1) (String.length f - i - 1) )
              | None -> None)
            fields )
  | _ -> None

let field assoc k = Option.map unescape (List.assoc_opt k assoc)

let int_field assoc k = Option.bind (List.assoc_opt k assoc) int_of_string_opt

let positive name = function
  | Some n when n >= 1 -> Ok n
  | Some _ -> Result.Error (Printf.sprintf "non-positive %s" name)
  | None -> Result.Error (Printf.sprintf "missing %s" name)

let parse_incoming line =
  match fields_of line with
  | Some ("stats", _) -> Ok Get_stats
  | Some ("check", assoc) -> (
      let ( let* ) = Result.bind in
      let* policy =
        Option.to_result ~none:"missing policy" (field assoc "policy")
      in
      let* agents = positive "n" (int_field assoc "n") in
      let* items = positive "j" (int_field assoc "j") in
      let* states = positive "st" (int_field assoc "st") in
      let* values = positive "vals" (int_field assoc "vals") in
      let seed = Option.value (int_field assoc "seed") ~default:1 in
      let id = Option.value (field assoc "id") ~default:"" in
      match List.assoc_opt "deadline" assoc with
      | Some d -> (
          match float_of_string_opt d with
          | Some d when d > 0.0 ->
              Ok
                (Check
                   { id; policy; agents; items; states; values; seed;
                     deadline_s = Some d })
          | _ -> Result.Error "invalid deadline")
      | None ->
          Ok
            (Check
               { id; policy; agents; items; states; values; seed;
                 deadline_s = None }))
  | Some (kind, _) -> Result.Error (Printf.sprintf "unknown request kind %S" kind)
  | None -> Result.Error "malformed request line"

let parse_response line =
  match fields_of line with
  | Some ("verdict", assoc) -> (
      let ( let* ) = Result.bind in
      let* sat =
        Option.to_result ~none:"missing sat verdict"
          (Option.bind (List.assoc_opt "sat" assoc)
             Core.Experiments.verdict_of_wire)
      in
      let* exhaustive =
        Option.to_result ~none:"missing exh verdict"
          (Option.bind (List.assoc_opt "exh" assoc)
             Core.Experiments.verdict_of_wire)
      in
      let* sim_ok =
        Option.to_result ~none:"missing sim flag"
          (Option.bind (List.assoc_opt "sim" assoc) bool_of_string_opt)
      in
      let cached =
        Option.value ~default:false
          (Option.bind (List.assoc_opt "cached" assoc) bool_of_string_opt)
      in
      let secs =
        Option.value ~default:0.0
          (Option.bind (List.assoc_opt "secs" assoc) float_of_string_opt)
      in
      Ok
        (Verdict
           {
             req_id = Option.value (field assoc "id") ~default:"";
             sat;
             exhaustive;
             sim_ok;
             rung = Option.value (field assoc "rung") ~default:"";
             cached;
             secs;
           }))
  | Some ("shed", assoc) ->
      Ok
        (Shed
           {
             req_id = Option.value (field assoc "id") ~default:"";
             depth = Option.value (int_field assoc "depth") ~default:0;
             capacity = Option.value (int_field assoc "cap") ~default:0;
           })
  | Some ("error", assoc) ->
      Ok
        (Error
           {
             req_id = Option.value (field assoc "id") ~default:"";
             msg = Option.value (field assoc "msg") ~default:"";
           })
  | Some ("stats", assoc) ->
      Ok
        (Stats
           (List.filter_map
              (fun (k, v) ->
                (* [proto] is framing metadata, not a counter *)
                if k = "proto" then None
                else
                  Option.map (fun n -> (unescape k, n)) (int_of_string_opt v))
              assoc))
  | Some (kind, _) -> Result.Error (Printf.sprintf "unknown response kind %S" kind)
  | None -> Result.Error "malformed response line"

let pp_response ppf r = Format.pp_print_string ppf (render_response r)
