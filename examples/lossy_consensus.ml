(* Consensus on an unreliable network: fault injection end to end.

   Four agents on a ring auction four items while the environment drops
   15% of messages, duplicates 5%, delays deliveries by up to 3
   scheduler steps, and crashes agent 2 mid-auction (it restarts with
   empty state and must re-converge from its neighbors' views).
   Retransmission with binary backoff restores liveness; the run is a
   deterministic function of the fault-plan seed, so the printed trace
   and ledger are reproducible bit for bit.

   The same tolerance can be *decided* (not sampled) with the explicit
   checker's bounded message adversary, shown at the end on a 2x2
   instance: every interleaving with up to 2 drops and 1 duplication
   still converges.

   Run with: dune exec examples/lossy_consensus.exe *)

let () =
  let n = 4 and items = 4 in
  let rng = Netsim.Rng.create 11 in
  let graph = Netsim.Topology.ring n in
  let base_utilities =
    Array.init n (fun _ -> Array.init items (fun _ -> 5 + Netsim.Rng.int rng 25))
  in
  let policy =
    Mca.Policy.make ~utility:(Mca.Policy.Submodular 2) ~target_items:items ()
  in
  let cfg =
    Mca.Protocol.uniform_config ~graph ~num_items:items ~base_utilities ~policy
  in
  let plan =
    Netsim.Faults.plan
      ~default_link:
        (Netsim.Faults.lossy ~drop:0.15 ~duplicate:0.05 ~max_delay:3 ())
      ~crashes:[ Netsim.Faults.crash ~restart_at:60 ~agent:2 ~at:20 () ]
      ~seed:42 ()
  in
  let trace = Mca.Trace.create () in
  (match Mca.Protocol.run_faulty ~record:trace ~faults:plan cfg with
  | Mca.Protocol.Converged { rounds; messages; allocation }, faults ->
      Format.printf "converged in %d steps with %d sends@." rounds messages;
      Array.iteri
        (fun j w -> Format.printf "  item %d -> %a@." j Mca.Types.pp_winner w)
        allocation;
      Format.printf "%a@." Netsim.Faults.pp_ledger faults;
      Format.printf "fault events on the protocol trace:@.";
      List.iter
        (fun ev -> Format.printf "  %a@." Netsim.Faults.pp_event ev)
        (Mca.Trace.fault_events trace)
  | v, _ ->
      Format.printf "unexpected verdict: %a@." Mca.Protocol.pp_verdict v;
      exit 1);

  (* decide 2-drop/1-duplication tolerance exhaustively on a 2x2 *)
  let cfg2 =
    Mca.Protocol.uniform_config ~graph:(Netsim.Topology.clique 2) ~num_items:2
      ~base_utilities:[| [| 10; 11 |]; [| 11; 10 |] |]
      ~policy:(Mca.Policy.make ~utility:(Mca.Policy.Submodular 2) ~target_items:2 ())
  in
  Format.printf "@.explicit checker, adversary with 2 drops + 1 duplication:@.";
  Format.printf "  %a@." Checker.Explore.pp_verdict
    (Checker.Explore.run ~max_drops:2 ~max_dups:1 cfg2)
