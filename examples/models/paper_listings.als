// The static MCA model of Sections III-IV, in the textual mini-Alloy
// language understood by bin/alloy_lite.exe. Field and fact names follow
// the paper's listings.
//
// Run with: dune exec bin/alloy_lite.exe -- examples/models/paper_listings.als

sig vnode {}

sig pnode {
  pid: one Int,
  pcp: one Int,
  initBids: vnode -> Int,
  pconnections: set pnode
}

fact uniqueIDs {
  all disj n1, n2: pnode | n1.pid != n2.pid
}

// undirected links must be modeled as two directed relations
fact pconnectivity {
  all disj pn1, pn2: pnode |
    (pn1 in pn2.pconnections) <=> (pn2 in pn1.pconnections)
}

// physical nodes can bid on virtual nodes only within their capacity
fact pcapacity {
  all p: pnode | (sum vnode.(p.initBids)) <= (sum p.pcp)
}

assert uniqueID {
  all disj n1, n2: pnode | n1.pid != n2.pid
}

assert symmetricLinks {
  all pn1, pn2: pnode | (pn1 in pn2.pconnections) => (pn2 in pn1.pconnections)
}

// intentionally false: nothing forces an agent to bid at all
assert everyoneBids {
  all p: pnode | some p.initBids
}

check uniqueID for 3 but 4 Int
check symmetricLinks for 3 but 4 Int
check everyoneBids for 3 but 4 Int
run {} for 3 but 4 Int
