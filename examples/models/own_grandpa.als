// Daniel Jackson's classic "I'm My Own Grandpa" model, transcribed to
// the mini-Alloy dialect as a frontend showcase: signature hierarchy,
// lone fields, transpose, transitive closure, let, and a run command.
//
// Run with: dune exec bin/alloy_lite.exe -- examples/models/own_grandpa.als

abstract sig Person {
  father: lone Man,
  mother: lone Woman
}

sig Man extends Person {
  wife: lone Woman
}

sig Woman extends Person {
  husband: lone Man
}

fact biology {
  no p: Person | p in p.^(father + mother)
}

fact terminology {
  wife = ~husband
}

fact socialConvention {
  no (wife + husband) & ^(mother + father)
}

fun parent [] : set Person {
  mother + father + father.wife + mother.husband
}

pred ownGrandpa[p: Person] {
  p in p.(parent[]).(parent[]) & Man
}

// a person can be their own grandfather (by marriage, not blood)
run ownGrandpa for 4

// sanity: nobody is their own biological ancestor
assert noSelfAncestor {
  no p: Person | p in p.^(father + mother)
}
check noSelfAncestor for 5
